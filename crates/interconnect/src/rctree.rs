//! RC-tree interconnect representation.
//!
//! A net's parasitics are a tree of resistive segments with grounded
//! capacitance at every node — the standard reduced form produced by
//! parasitic extraction. Node 0 is always the root (the driver output pin);
//! sink nodes carry the load-cell input pins.

/// Identifier of a node within one [`RcTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

/// Crate-internal constructor of a [`NodeId`] from a raw index.
pub(crate) fn node_id(index: usize) -> NodeId {
    NodeId(index)
}

impl NodeId {
    /// The root node (driver output).
    pub const ROOT: NodeId = NodeId(0);

    /// Raw index of this node.
    pub fn index(self) -> usize {
        self.0
    }
}

/// One node of the tree: the resistance of the segment from its parent and
/// the grounded capacitance at the node.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Node {
    parent: Option<usize>,
    /// Resistance (Ω) of the edge from `parent` to this node (0 for root).
    res: f64,
    /// Grounded capacitance (F) at this node.
    cap: f64,
}

/// An RC tree with a designated root and a set of sink nodes.
///
/// # Examples
///
/// ```
/// use nsigma_interconnect::rctree::RcTree;
///
/// // root --1kΩ-- n1 --1kΩ-- n2 (sink), 1 fF at each node
/// let mut t = RcTree::new(1.0e-15);
/// let n1 = t.add_node(RcTree::root(), 1000.0, 1.0e-15);
/// let n2 = t.add_node(n1, 1000.0, 1.0e-15);
/// t.mark_sink(n2);
/// assert_eq!(t.len(), 3);
/// assert_eq!(t.sinks(), &[n2]);
/// assert!((t.total_cap() - 3.0e-15).abs() < 1e-30);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RcTree {
    nodes: Vec<Node>,
    sinks: Vec<NodeId>,
    children: Vec<Vec<usize>>,
}

impl RcTree {
    /// Creates a tree containing only the root with the given grounded cap.
    pub fn new(root_cap: f64) -> Self {
        Self {
            nodes: vec![Node {
                parent: None,
                res: 0.0,
                cap: root_cap,
            }],
            sinks: Vec::new(),
            children: vec![Vec::new()],
        }
    }

    /// The root node id.
    pub fn root() -> NodeId {
        NodeId::ROOT
    }

    /// Adds a node hanging off `parent` through `res` ohms, with `cap`
    /// farads to ground. Returns the new node's id.
    ///
    /// # Panics
    ///
    /// Panics if `parent` is out of range or `res`/`cap` are negative.
    pub fn add_node(&mut self, parent: NodeId, res: f64, cap: f64) -> NodeId {
        assert!(parent.0 < self.nodes.len(), "parent out of range");
        assert!(res >= 0.0 && cap >= 0.0, "res/cap must be non-negative");
        let id = self.nodes.len();
        self.nodes.push(Node {
            parent: Some(parent.0),
            res,
            cap,
        });
        self.children.push(Vec::new());
        self.children[parent.0].push(id);
        NodeId(id)
    }

    /// Marks a node as a sink (a load-pin attachment point).
    ///
    /// # Panics
    ///
    /// Panics if the node is out of range.
    pub fn mark_sink(&mut self, node: NodeId) {
        assert!(node.0 < self.nodes.len(), "node out of range");
        if !self.sinks.contains(&node) {
            self.sinks.push(node);
        }
    }

    /// Adds capacitance at a node (e.g. the input cap of an attached load).
    ///
    /// # Panics
    ///
    /// Panics if the node is out of range or `extra` is negative.
    pub fn add_cap(&mut self, node: NodeId, extra: f64) {
        assert!(node.0 < self.nodes.len(), "node out of range");
        assert!(extra >= 0.0, "cap must be non-negative");
        self.nodes[node.0].cap += extra;
    }

    /// Number of nodes (including the root).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the tree is only the root.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// The sink nodes, in insertion order.
    pub fn sinks(&self) -> &[NodeId] {
        &self.sinks
    }

    /// Parent of a node (`None` for the root).
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        self.nodes[node.0].parent.map(NodeId)
    }

    /// Children of a node.
    pub fn children(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.children[node.0].iter().map(|&i| NodeId(i))
    }

    /// Segment resistance from the parent into this node (Ω).
    pub fn res(&self, node: NodeId) -> f64 {
        self.nodes[node.0].res
    }

    /// Grounded capacitance at this node (F).
    pub fn cap(&self, node: NodeId) -> f64 {
        self.nodes[node.0].cap
    }

    /// Sum of all node capacitances (F) — what the driver sees at DC.
    pub fn total_cap(&self) -> f64 {
        self.nodes.iter().map(|n| n.cap).sum()
    }

    /// Total segment resistance (Ω).
    pub fn total_res(&self) -> f64 {
        self.nodes.iter().map(|n| n.res).sum()
    }

    /// Resistance along the path from the root to `node` (Ω).
    pub fn path_res(&self, node: NodeId) -> f64 {
        let mut r = 0.0;
        let mut cur = node.0;
        while let Some(p) = self.nodes[cur].parent {
            r += self.nodes[cur].res;
            cur = p;
        }
        r
    }

    /// Nodes in topological order (parents before children). Node storage
    /// order already satisfies this by construction.
    pub fn topo_order(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len()).map(NodeId)
    }

    /// Returns a copy with every segment resistance and node capacitance
    /// transformed — the hook the Monte-Carlo sampler uses to apply global
    /// and local R/C variation.
    pub fn scaled_with(
        &self,
        mut res_scale: impl FnMut(NodeId, f64) -> f64,
        mut cap_scale: impl FnMut(NodeId, f64) -> f64,
    ) -> RcTree {
        let mut out = self.clone();
        for i in 0..out.nodes.len() {
            let id = NodeId(i);
            out.nodes[i].res = res_scale(id, self.nodes[i].res);
            out.nodes[i].cap = cap_scale(id, self.nodes[i].cap);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: usize, r: f64, c: f64) -> (RcTree, Vec<NodeId>) {
        let mut t = RcTree::new(c);
        let mut ids = vec![RcTree::root()];
        let mut cur = RcTree::root();
        for _ in 0..n {
            cur = t.add_node(cur, r, c);
            ids.push(cur);
        }
        t.mark_sink(cur);
        (t, ids)
    }

    #[test]
    fn chain_accounting() {
        let (t, ids) = chain(3, 100.0, 2e-15);
        assert_eq!(t.len(), 4);
        assert!((t.total_cap() - 8e-15).abs() < 1e-28);
        assert!((t.total_res() - 300.0).abs() < 1e-9);
        assert!((t.path_res(ids[3]) - 300.0).abs() < 1e-9);
        assert!((t.path_res(ids[1]) - 100.0).abs() < 1e-9);
        assert_eq!(t.parent(ids[1]), Some(RcTree::root()));
        assert_eq!(t.parent(RcTree::root()), None);
    }

    #[test]
    fn sink_marking_is_idempotent() {
        let (mut t, ids) = chain(2, 1.0, 1e-15);
        t.mark_sink(ids[2]);
        t.mark_sink(ids[2]);
        assert_eq!(t.sinks().len(), 1);
    }

    #[test]
    fn add_cap_accumulates() {
        let (mut t, ids) = chain(1, 1.0, 1e-15);
        t.add_cap(ids[1], 3e-15);
        assert!((t.cap(ids[1]) - 4e-15).abs() < 1e-28);
    }

    #[test]
    fn scaled_with_applies_factors() {
        let (t, _) = chain(2, 10.0, 1e-15);
        let s = t.scaled_with(|_, r| r * 2.0, |_, c| c * 3.0);
        assert!((s.total_res() - 2.0 * t.total_res()).abs() < 1e-9);
        assert!((s.total_cap() - 3.0 * t.total_cap()).abs() < 1e-27);
        // Original untouched.
        assert!((t.total_res() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn branching_children() {
        let mut t = RcTree::new(1e-15);
        let a = t.add_node(RcTree::root(), 1.0, 1e-15);
        let b = t.add_node(RcTree::root(), 1.0, 1e-15);
        let kids: Vec<NodeId> = t.children(RcTree::root()).collect();
        assert_eq!(kids, vec![a, b]);
    }

    #[test]
    #[should_panic(expected = "res/cap must be non-negative")]
    fn negative_res_rejected() {
        let mut t = RcTree::new(0.0);
        t.add_node(RcTree::root(), -1.0, 0.0);
    }
}
