//! # nsigma-interconnect
//!
//! RC-tree interconnect substrate for the `nsigma` workspace (reproduction
//! of Jin et al., DATE 2023).
//!
//! * [`rctree`] — the parasitic tree representation (driver root, sink pins);
//! * [`elmore`] — impulse-response moments: Elmore m₁ (the paper's eq. 4)
//!   and m₂;
//! * [`metrics`] — D2M and the two-pole 50 % metric used by the golden
//!   simulator at circuit scale;
//! * [`transient`] — backward-Euler transient solver (the wire "SPICE" of
//!   Figs. 7/8/10), O(n) per step via tree elimination;
//! * [`spef`] — SPEF-lite parasitic exchange text format;
//! * [`generator`] — placement-statistics net generation (the IC Compiler
//!   substitute);
//! * [`mesh`] — non-tree RC networks via MNA moment solves (the "non-tree
//!   net structures" of the paper's wire-estimation citation).
//!
//! # Examples
//!
//! ```
//! use nsigma_interconnect::elmore::elmore_delay;
//! use nsigma_interconnect::rctree::RcTree;
//!
//! let mut t = RcTree::new(0.1e-15);
//! let sink = t.add_node(RcTree::root(), 250.0, 2.0e-15);
//! t.mark_sink(sink);
//! assert!(elmore_delay(&t, sink) > 0.0);
//! ```

#![warn(missing_docs)]

pub mod elmore;
pub mod generator;
pub mod mesh;
pub mod metrics;
pub mod rctree;
pub mod spef;
pub mod transient;

pub use elmore::{elmore_all, elmore_delay, moments_all};
pub use generator::{generate_net, random_net, NetGenConfig};
pub use mesh::RcMesh;
pub use metrics::{d2m_delay, two_pole_delay};
pub use rctree::{NodeId, RcTree};
pub use spef::SpefNet;
pub use transient::{simulate_ramp, TransientConfig, TransientResult};
