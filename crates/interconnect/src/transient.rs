//! Backward-Euler transient simulation of an RC tree behind a resistive
//! driver — the "SPICE" of the wire experiments (Figs. 7, 8, 10).
//!
//! The driver is modeled as a saturated-ramp voltage source (slew `S`, swing
//! `V_dd`) behind a resistance `R_drv` derived from the driving cell's
//! sampled on-current. Because the tree's conductance matrix is a tree, each
//! implicit step solves in O(n) with leaf-to-root elimination — no general
//! sparse solver needed.

use crate::rctree::{NodeId, RcTree};

/// Configuration of one transient run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransientConfig {
    /// Supply swing (V).
    pub vdd: f64,
    /// Input ramp 0→V_dd transition time (s).
    pub input_slew: f64,
    /// Driver resistance in series with the source (Ω). Must be positive —
    /// an ideal source is approximated by a very small value.
    pub driver_res: f64,
    /// Time step (s). Choose ≲ min(RC)/5 for accuracy.
    pub dt: f64,
    /// Simulation horizon (s).
    pub t_max: f64,
}

impl TransientConfig {
    /// A reasonable configuration for a tree: `dt` from the Elmore scale of
    /// the tree, horizon long enough for the slowest sink.
    ///
    /// # Panics
    ///
    /// Panics if any of `vdd`, `driver_res` is non-positive.
    pub fn auto(tree: &RcTree, vdd: f64, input_slew: f64, driver_res: f64) -> Self {
        assert!(vdd > 0.0, "vdd must be positive");
        assert!(driver_res > 0.0, "driver_res must be positive");
        let tau = (driver_res + tree.total_res()) * tree.total_cap();
        let horizon = 12.0 * tau + 2.0 * input_slew + 1e-12;
        Self {
            vdd,
            input_slew,
            driver_res,
            dt: (horizon / 20_000.0).max(1e-16),
            t_max: horizon,
        }
    }
}

/// Result of a transient run: 50 % crossing times (s, absolute from ramp
/// start) at the root and every sink.
#[derive(Debug, Clone, PartialEq)]
pub struct TransientResult {
    /// Time the source ramp crosses 50 % (= slew/2).
    pub source_cross: f64,
    /// Time the root (driver output) node crosses 50 %.
    pub root_cross: f64,
    /// Crossing time per sink, in `tree.sinks()` order.
    pub sink_cross: Vec<f64>,
}

impl TransientResult {
    /// Wire delay of sink `i`: sink crossing minus root crossing — the
    /// quantity the paper's `T_w` measures.
    pub fn wire_delay(&self, i: usize) -> f64 {
        self.sink_cross[i] - self.root_cross
    }
}

/// Runs a backward-Euler transient of `tree` driven by a saturated ramp
/// behind `cfg.driver_res`, returning 50 % crossing times.
///
/// # Panics
///
/// Panics if the tree has a non-root segment with zero resistance, if the
/// tree has no sinks, or if a sink fails to cross 50 % within `t_max`
/// (indicating a mis-sized horizon).
pub fn simulate_ramp(tree: &RcTree, cfg: &TransientConfig) -> TransientResult {
    let n = tree.len();
    assert!(!tree.sinks().is_empty(), "tree has no sinks to measure");

    // Edge conductances; g[0] is the driver conductance into the root.
    let mut g = vec![0.0; n];
    g[0] = 1.0 / cfg.driver_res;
    for id in tree.topo_order().skip(1) {
        let r = tree.res(id);
        assert!(r > 0.0, "segment resistance must be positive for transient");
        g[id.index()] = 1.0 / r;
    }

    // Assemble constant diagonal of A = G + C/dt and precompute the tree
    // elimination factors (children have larger indices than parents).
    let dt = cfg.dt;
    let mut diag = vec![0.0; n];
    for i in 0..n {
        let id = NodeId(i);
        let mut d = tree.cap(id) / dt + g[i];
        for c in tree.children(id) {
            d += g[c.index()];
        }
        diag[i] = d;
    }
    // Eliminated diagonal a' (leaf-to-root), constant across steps.
    let mut a = diag.clone();
    let parents: Vec<usize> = (0..n)
        .map(|i| {
            tree.parent(NodeId(i))
                .map(|p| p.index())
                .unwrap_or(usize::MAX)
        })
        .collect();
    for i in (1..n).rev() {
        let p = parents[i];
        a[p] -= g[i] * g[i] / a[i];
    }

    let half = 0.5 * cfg.vdd;
    let source = |t: f64| {
        if t <= 0.0 {
            0.0
        } else if t >= cfg.input_slew {
            cfg.vdd
        } else {
            cfg.vdd * t / cfg.input_slew
        }
    };

    let sinks: Vec<usize> = tree.sinks().iter().map(|s| s.index()).collect();
    let mut v = vec![0.0; n];
    let mut rhs = vec![0.0; n];
    let mut root_cross = f64::NAN;
    let mut sink_cross = vec![f64::NAN; sinks.len()];
    let mut crossed = 0usize;

    let steps = (cfg.t_max / dt).ceil() as usize;
    let mut prev_v0 = 0.0;
    let mut prev_sinks = vec![0.0; sinks.len()];
    let mut t = 0.0;
    for _ in 0..steps {
        let t_next = t + dt;
        // rhs = C/dt * v_prev (+ source injection at the root).
        for i in 0..n {
            rhs[i] = tree.cap(NodeId(i)) / dt * v[i];
        }
        rhs[0] += g[0] * source(t_next);
        // Forward elimination (leaf to root).
        for i in (1..n).rev() {
            let p = parents[i];
            rhs[p] += g[i] / a[i] * rhs[i];
        }
        // Back substitution (root to leaves).
        v[0] = rhs[0] / a[0];
        for i in 1..n {
            let p = parents[i];
            v[i] = (rhs[i] + g[i] * v[p]) / a[i];
        }

        // Crossing detection with linear interpolation inside the step.
        if root_cross.is_nan() && prev_v0 < half && v[0] >= half {
            let frac = (half - prev_v0) / (v[0] - prev_v0);
            root_cross = t + frac * dt;
        }
        for (k, &s) in sinks.iter().enumerate() {
            if sink_cross[k].is_nan() && prev_sinks[k] < half && v[s] >= half {
                let frac = (half - prev_sinks[k]) / (v[s] - prev_sinks[k]);
                sink_cross[k] = t + frac * dt;
                crossed += 1;
            }
            prev_sinks[k] = v[s];
        }
        prev_v0 = v[0];
        t = t_next;
        if crossed == sinks.len() && !root_cross.is_nan() {
            break;
        }
    }

    assert!(
        !root_cross.is_nan() && sink_cross.iter().all(|c| !c.is_nan()),
        "simulation horizon too short: a node never crossed 50%"
    );

    TransientResult {
        source_cross: 0.5 * cfg.input_slew,
        root_cross,
        sink_cross,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elmore::moments_all;
    use crate::metrics::{d2m_delay, two_pole_delay};

    fn single_rc(r: f64, c: f64) -> (RcTree, NodeId) {
        let mut t = RcTree::new(1e-18);
        let s = t.add_node(RcTree::root(), r, c);
        t.mark_sink(s);
        (t, s)
    }

    #[test]
    fn single_rc_step_matches_analytic() {
        // Tiny driver resistance + fast ramp ≈ ideal step at the root;
        // sink lags by ln2·RC.
        let (tree, _) = single_rc(1000.0, 2e-15);
        let cfg = TransientConfig {
            vdd: 0.6,
            input_slew: 1e-15,
            driver_res: 1.0,
            dt: 2e-12 / 3000.0,
            t_max: 40e-12,
        };
        let res = simulate_ramp(&tree, &cfg);
        let expected = core::f64::consts::LN_2 * 1000.0 * 2e-15;
        let measured = res.wire_delay(0);
        assert!(
            (measured - expected).abs() / expected < 0.02,
            "measured {measured} vs {expected}"
        );
    }

    #[test]
    fn two_pole_tracks_transient_on_ladder() {
        // The circuit-scale fast model (two-pole on m1/m2 with the driver
        // folded in) should sit within a few percent of the transient.
        let mut tree = RcTree::new(0.2e-15);
        let mut cur = RcTree::root();
        for _ in 0..8 {
            cur = tree.add_node(cur, 300.0, 0.6e-15);
        }
        tree.mark_sink(cur);

        let rd = 2000.0;
        let cfg = TransientConfig::auto(&tree, 0.6, 1e-15, rd);
        let res = simulate_ramp(&tree, &cfg);

        // Fold the driver into the tree for the moment computation.
        let mut with_drv = RcTree::new(1e-21);
        let mut map_cur = with_drv.add_node(RcTree::root(), rd, tree.cap(RcTree::root()));
        for id in tree.topo_order().skip(1) {
            map_cur = with_drv.add_node(map_cur, tree.res(id), tree.cap(id));
        }
        with_drv.mark_sink(map_cur);
        let (m1, m2) = moments_all(&with_drv);
        let tp_total = two_pole_delay(m1[map_cur.index()], m2[map_cur.index()]);
        // Compare against source→sink crossing from the transient.
        let measured_total = res.sink_cross[0] - res.source_cross;
        let rel = (tp_total - measured_total).abs() / measured_total;
        assert!(
            rel < 0.08,
            "two-pole {tp_total} vs transient {measured_total} (rel {rel})"
        );
        // And D2M lands in the same ballpark.
        let d2m = d2m_delay(m1[map_cur.index()], m2[map_cur.index()]);
        assert!((d2m - measured_total).abs() / measured_total < 0.25);
    }

    #[test]
    fn slower_input_slew_increases_absolute_crossings() {
        let (tree, _) = single_rc(500.0, 1e-15);
        let fast = simulate_ramp(&tree, &TransientConfig::auto(&tree, 0.6, 1e-12, 100.0));
        let slow = simulate_ramp(&tree, &TransientConfig::auto(&tree, 0.6, 50e-12, 100.0));
        assert!(slow.sink_cross[0] > fast.sink_cross[0]);
        assert_eq!(slow.source_cross, 25e-12);
    }

    #[test]
    fn bigger_driver_resistance_slows_the_root() {
        let (tree, _) = single_rc(500.0, 1e-15);
        let weak = simulate_ramp(&tree, &TransientConfig::auto(&tree, 0.6, 1e-12, 5000.0));
        let strong = simulate_ramp(&tree, &TransientConfig::auto(&tree, 0.6, 1e-12, 100.0));
        assert!(weak.root_cross > strong.root_cross);
    }

    #[test]
    fn branched_tree_both_sinks_measured() {
        let mut t = RcTree::new(0.1e-15);
        let trunk = t.add_node(RcTree::root(), 200.0, 0.4e-15);
        let near = t.add_node(trunk, 100.0, 0.5e-15);
        let far = t.add_node(trunk, 900.0, 1.5e-15);
        t.mark_sink(near);
        t.mark_sink(far);
        let res = simulate_ramp(&t, &TransientConfig::auto(&t, 0.6, 5e-12, 800.0));
        assert!(res.wire_delay(1) > res.wire_delay(0), "far sink is slower");
        assert!(res.wire_delay(0) > 0.0);
    }

    #[test]
    #[should_panic(expected = "tree has no sinks")]
    fn requires_sinks() {
        let t = RcTree::new(1e-15);
        simulate_ramp(
            &t,
            &TransientConfig {
                vdd: 0.6,
                input_slew: 1e-12,
                driver_res: 100.0,
                dt: 1e-13,
                t_max: 1e-9,
            },
        );
    }
}
