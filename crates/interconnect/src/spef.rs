//! SPEF-lite: a minimal, line-oriented parasitics exchange format.
//!
//! Real designs ship IEEE 1481 SPEF from the router; the paper gets its
//! parasitics from IC Compiler. This workspace generates its own RC trees,
//! so a compact format with the same information content (net name, tree
//! topology, per-segment R, per-node C, sink markers) is used instead:
//!
//! ```text
//! *SPEF-LITE 1
//! *NET n42
//! *N 0 -1 0 1.5e-16      // node 0: root, no parent, res 0, cap 0.15 fF
//! *N 1 0 120.0 2.0e-16   // node 1 hangs off node 0 through 120 Ω
//! *S 1                   // node 1 is a sink
//! *END
//! ```

use crate::rctree::{node_id, RcTree};
use std::fmt::Write as _;

/// A named parasitic net.
#[derive(Debug, Clone, PartialEq)]
pub struct SpefNet {
    /// Net name.
    pub name: String,
    /// The RC tree.
    pub tree: RcTree,
}

/// Error parsing SPEF-lite text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseSpefError {
    /// Missing `*SPEF-LITE` header.
    MissingHeader,
    /// A record was malformed; carries the 1-based line number.
    BadRecord(usize),
    /// Node ids must be dense and in order (parent before child).
    BadTopology(usize),
    /// A `*NET` name was defined twice in the same file.
    DuplicateNet(usize, String),
    /// A `*N` record redefined an already-declared node id.
    DuplicateNode(usize),
    /// A `*N` parent or `*S` sink referenced a node not yet declared.
    UndeclaredNode(usize),
    /// A resistance or capacitance was negative or not finite.
    BadValue(usize),
    /// The file ended before `*END`.
    UnexpectedEof,
}

impl std::fmt::Display for ParseSpefError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseSpefError::MissingHeader => write!(f, "missing *SPEF-LITE header"),
            ParseSpefError::BadRecord(l) => write!(f, "malformed record at line {l}"),
            ParseSpefError::BadTopology(l) => write!(f, "invalid tree topology at line {l}"),
            ParseSpefError::DuplicateNet(l, n) => {
                write!(f, "duplicate *NET '{n}' at line {l}")
            }
            ParseSpefError::DuplicateNode(l) => {
                write!(f, "duplicate node definition at line {l}")
            }
            ParseSpefError::UndeclaredNode(l) => {
                write!(f, "reference to undeclared node at line {l}")
            }
            ParseSpefError::BadValue(l) => {
                write!(f, "negative or non-finite R/C value at line {l}")
            }
            ParseSpefError::UnexpectedEof => write!(f, "unexpected end of file before *END"),
        }
    }
}

impl ParseSpefError {
    /// The 1-based source line the error points at, when known.
    pub fn line(&self) -> Option<usize> {
        match self {
            ParseSpefError::BadRecord(l)
            | ParseSpefError::BadTopology(l)
            | ParseSpefError::DuplicateNet(l, _)
            | ParseSpefError::DuplicateNode(l)
            | ParseSpefError::UndeclaredNode(l)
            | ParseSpefError::BadValue(l) => Some(*l),
            ParseSpefError::MissingHeader | ParseSpefError::UnexpectedEof => None,
        }
    }
}

impl std::error::Error for ParseSpefError {}

/// Serializes nets to SPEF-lite text.
///
/// # Examples
///
/// ```
/// use nsigma_interconnect::rctree::RcTree;
/// use nsigma_interconnect::spef::{parse, write, SpefNet};
///
/// let mut t = RcTree::new(1e-16);
/// let s = t.add_node(RcTree::root(), 100.0, 2e-16);
/// t.mark_sink(s);
/// let text = write(&[SpefNet { name: "n1".into(), tree: t.clone() }]);
/// let nets = parse(&text)?;
/// assert_eq!(nets[0].tree, t);
/// # Ok::<(), nsigma_interconnect::spef::ParseSpefError>(())
/// ```
pub fn write(nets: &[SpefNet]) -> String {
    let mut out = String::from("*SPEF-LITE 1\n");
    for net in nets {
        writeln!(out, "*NET {}", net.name).expect("string write");
        for id in net.tree.topo_order() {
            let parent = net.tree.parent(id).map(|p| p.index() as i64).unwrap_or(-1);
            writeln!(
                out,
                "*N {} {} {:e} {:e}",
                id.index(),
                parent,
                net.tree.res(id),
                net.tree.cap(id)
            )
            .expect("string write");
        }
        for s in net.tree.sinks() {
            writeln!(out, "*S {}", s.index()).expect("string write");
        }
        out.push_str("*END\n");
    }
    out
}

/// Parses SPEF-lite text into nets.
///
/// # Errors
///
/// Returns a [`ParseSpefError`] describing the first malformed line.
pub fn parse(text: &str) -> Result<Vec<SpefNet>, ParseSpefError> {
    let mut lines = text.lines().enumerate().peekable();
    match lines.next() {
        Some((_, l)) if l.trim_start().starts_with("*SPEF-LITE") => {}
        _ => return Err(ParseSpefError::MissingHeader),
    }

    let mut nets = Vec::new();
    let mut seen_names = std::collections::HashSet::new();
    while let Some((lineno, line)) = lines.next() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let name = line
            .strip_prefix("*NET ")
            .ok_or(ParseSpefError::BadRecord(lineno + 1))?
            .trim()
            .to_string();
        if !seen_names.insert(name.clone()) {
            return Err(ParseSpefError::DuplicateNet(lineno + 1, name));
        }

        let mut tree: Option<RcTree> = None;
        let mut node_count = 0usize;
        let mut ended = false;
        for (lineno, line) in lines.by_ref() {
            let line = line.trim();
            if line == "*END" {
                ended = true;
                break;
            }
            if let Some(rest) = line.strip_prefix("*N ") {
                let mut it = rest.split_whitespace();
                let (id, parent, res, cap) = (
                    next_num::<usize>(&mut it, lineno)?,
                    next_num::<i64>(&mut it, lineno)?,
                    next_num::<f64>(&mut it, lineno)?,
                    next_num::<f64>(&mut it, lineno)?,
                );
                if id < node_count {
                    return Err(ParseSpefError::DuplicateNode(lineno + 1));
                }
                if id > node_count {
                    return Err(ParseSpefError::BadTopology(lineno + 1));
                }
                if !res.is_finite() || !cap.is_finite() || res < 0.0 || cap < 0.0 {
                    return Err(ParseSpefError::BadValue(lineno + 1));
                }
                if id == 0 {
                    if parent != -1 {
                        return Err(ParseSpefError::BadTopology(lineno + 1));
                    }
                    tree = Some(RcTree::new(cap));
                } else {
                    let t = tree
                        .as_mut()
                        .ok_or(ParseSpefError::BadTopology(lineno + 1))?;
                    if parent < 0 {
                        return Err(ParseSpefError::BadTopology(lineno + 1));
                    }
                    if parent as usize >= id {
                        return Err(ParseSpefError::UndeclaredNode(lineno + 1));
                    }
                    t.add_node(node_id(parent as usize), res, cap);
                }
                node_count += 1;
            } else if let Some(rest) = line.strip_prefix("*S ") {
                let idx: usize = rest
                    .trim()
                    .parse()
                    .map_err(|_| ParseSpefError::BadRecord(lineno + 1))?;
                let t = tree
                    .as_mut()
                    .ok_or(ParseSpefError::BadTopology(lineno + 1))?;
                if idx >= t.len() {
                    return Err(ParseSpefError::UndeclaredNode(lineno + 1));
                }
                t.mark_sink(node_id(idx));
            } else if !line.is_empty() {
                return Err(ParseSpefError::BadRecord(lineno + 1));
            }
        }
        if !ended {
            return Err(ParseSpefError::UnexpectedEof);
        }
        let tree = tree.ok_or(ParseSpefError::UnexpectedEof)?;
        nets.push(SpefNet { name, tree });
    }
    Ok(nets)
}

fn next_num<T: std::str::FromStr>(
    it: &mut std::str::SplitWhitespace<'_>,
    lineno: usize,
) -> Result<T, ParseSpefError> {
    it.next()
        .and_then(|s| s.parse().ok())
        .ok_or(ParseSpefError::BadRecord(lineno + 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tree() -> RcTree {
        let mut t = RcTree::new(1e-16);
        let a = t.add_node(RcTree::root(), 120.0, 2e-16);
        let b = t.add_node(a, 80.0, 3e-16);
        let c = t.add_node(a, 200.0, 1e-16);
        t.mark_sink(b);
        t.mark_sink(c);
        t
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let nets = vec![
            SpefNet {
                name: "alpha".into(),
                tree: sample_tree(),
            },
            SpefNet {
                name: "beta".into(),
                tree: RcTree::new(5e-16),
            },
        ];
        let text = write(&nets);
        let parsed = parse(&text).unwrap();
        assert_eq!(parsed, nets);
    }

    #[test]
    fn rejects_missing_header() {
        assert_eq!(parse("*NET x\n*END\n"), Err(ParseSpefError::MissingHeader));
    }

    #[test]
    fn rejects_orphan_topology() {
        let text = "*SPEF-LITE 1\n*NET x\n*N 0 -1 0 1e-16\n*N 1 5 10 1e-16\n*END\n";
        assert_eq!(parse(text), Err(ParseSpefError::UndeclaredNode(4)));
    }

    #[test]
    fn rejects_duplicate_node_definition() {
        let text =
            "*SPEF-LITE 1\n*NET x\n*N 0 -1 0 1e-16\n*N 1 0 10 1e-16\n*N 1 0 20 1e-16\n*END\n";
        assert_eq!(parse(text), Err(ParseSpefError::DuplicateNode(5)));
    }

    #[test]
    fn rejects_duplicate_net_name() {
        let text = "*SPEF-LITE 1\n*NET x\n*N 0 -1 0 1e-16\n*END\n*NET x\n*N 0 -1 0 1e-16\n*END\n";
        assert_eq!(
            parse(text),
            Err(ParseSpefError::DuplicateNet(5, "x".into()))
        );
    }

    #[test]
    fn rejects_sink_on_undeclared_node() {
        let text = "*SPEF-LITE 1\n*NET x\n*N 0 -1 0 1e-16\n*S 3\n*END\n";
        assert_eq!(parse(text), Err(ParseSpefError::UndeclaredNode(4)));
    }

    #[test]
    fn rejects_negative_and_non_finite_values() {
        let neg = "*SPEF-LITE 1\n*NET x\n*N 0 -1 0 1e-16\n*N 1 0 -5 1e-16\n*END\n";
        assert_eq!(parse(neg), Err(ParseSpefError::BadValue(4)));
        let nan = "*SPEF-LITE 1\n*NET x\n*N 0 -1 0 NaN\n*END\n";
        assert_eq!(parse(nan), Err(ParseSpefError::BadValue(3)));
        let inf = "*SPEF-LITE 1\n*NET x\n*N 0 -1 0 1e-16\n*N 1 0 inf 1e-16\n*END\n";
        assert_eq!(parse(inf), Err(ParseSpefError::BadValue(4)));
    }

    #[test]
    fn rejects_truncated_file() {
        let text = "*SPEF-LITE 1\n*NET x\n*N 0 -1 0 1e-16\n";
        assert_eq!(parse(text), Err(ParseSpefError::UnexpectedEof));
    }

    #[test]
    fn rejects_garbage_record() {
        let text = "*SPEF-LITE 1\n*NET x\n*N 0 -1 0 1e-16\nwhat\n*END\n";
        assert!(matches!(parse(text), Err(ParseSpefError::BadRecord(_))));
    }
}
