//! RC-net generation — the place-and-route substitute.
//!
//! The paper extracts parasitics from IC Compiler. Here, nets are generated
//! from placement-like statistics: a trunk of wire segments with branches to
//! each fanout pin, segment R/C derived from a technology's per-length
//! constants, and segment lengths drawn from a log-normal "wirelength"
//! distribution. The paper's "five RC example circuits randomly chosen from
//! the parasitic files" (§V-C) map to [`random_net`] draws.

use crate::rctree::{NodeId, RcTree};
use nsigma_stats::rng::standard_normal;
use rand::Rng;

/// Parameters for net generation.
#[derive(Debug, Clone, PartialEq)]
pub struct NetGenConfig {
    /// Wire resistance per meter (Ω/m).
    pub res_per_m: f64,
    /// Wire capacitance per meter (F/m).
    pub cap_per_m: f64,
    /// Mean total wirelength (m). Typical intra-block nets: 5–200 µm.
    pub mean_length: f64,
    /// Relative sigma of the log-normal length draw.
    pub length_sigma: f64,
    /// Number of fanout branches (sinks).
    pub fanout: usize,
    /// Segments along the trunk.
    pub trunk_segments: usize,
    /// Segments along each branch.
    pub branch_segments: usize,
}

impl NetGenConfig {
    /// Defaults matching the synthetic 28 nm BEOL constants and a 12 µm net.
    pub fn default_28nm() -> Self {
        Self {
            res_per_m: 4.0e6,
            cap_per_m: 0.2e-9,
            mean_length: 12e-6,
            length_sigma: 0.4,
            fanout: 1,
            trunk_segments: 4,
            branch_segments: 2,
        }
    }

    /// Same configuration with a different fanout.
    pub fn with_fanout(mut self, fanout: usize) -> Self {
        self.fanout = fanout.max(1);
        self
    }

    /// Same configuration with a different mean length.
    pub fn with_mean_length(mut self, mean_length: f64) -> Self {
        self.mean_length = mean_length;
        self
    }
}

/// Generates one net: a trunk with `fanout` branches, each branch ending in
/// a sink.
///
/// Total length is drawn log-normally around `mean_length`, split across
/// trunk and branches, and discretized into π-like segments (R with the cap
/// lumped at the far node).
///
/// # Panics
///
/// Panics if `fanout == 0` or segment counts are zero.
///
/// # Examples
///
/// ```
/// use nsigma_interconnect::generator::{generate_net, NetGenConfig};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(5);
/// let cfg = NetGenConfig::default_28nm().with_fanout(3);
/// let tree = generate_net(&mut rng, &cfg);
/// assert_eq!(tree.sinks().len(), 3);
/// assert!(tree.total_res() > 0.0);
/// ```
pub fn generate_net<R: Rng + ?Sized>(rng: &mut R, cfg: &NetGenConfig) -> RcTree {
    assert!(cfg.fanout > 0, "fanout must be at least 1");
    assert!(
        cfg.trunk_segments > 0 && cfg.branch_segments > 0,
        "segment counts must be positive"
    );

    // Log-normal total length, mean cfg.mean_length.
    let s2 = (1.0 + cfg.length_sigma * cfg.length_sigma).ln();
    let total_len = cfg.mean_length * (s2.sqrt() * standard_normal(rng) - 0.5 * s2).exp();

    // Split: 40% trunk, 60% divided across branches (with jitter).
    let trunk_len = 0.4 * total_len;
    let branch_len = 0.6 * total_len / cfg.fanout as f64;

    let mut tree = RcTree::new(0.02e-15); // small pin-landing cap at the root
    let mut cur = RcTree::root();
    let seg_len = trunk_len / cfg.trunk_segments as f64;
    for _ in 0..cfg.trunk_segments {
        let jitter = (0.8 + 0.4 * rng.gen::<f64>()) * seg_len;
        cur = tree.add_node(
            cur,
            (cfg.res_per_m * jitter).max(0.1),
            cfg.cap_per_m * jitter,
        );
    }
    let trunk_end = cur;

    for _ in 0..cfg.fanout {
        let mut b = trunk_end;
        let seg = branch_len / cfg.branch_segments as f64;
        for _ in 0..cfg.branch_segments {
            let jitter = (0.8 + 0.4 * rng.gen::<f64>()) * seg;
            b = tree.add_node(b, (cfg.res_per_m * jitter).max(0.1), cfg.cap_per_m * jitter);
        }
        tree.mark_sink(b);
    }
    tree
}

/// Draws a "random RC interconnect circuit" in the spirit of §V-C: 5–20
/// segments, per-segment R ∈ [50, 600] Ω and C ∈ [0.05, 0.6] fF, random tree
/// topology, one sink at the far end plus any additional leaves.
pub fn random_net<R: Rng + ?Sized>(rng: &mut R, sinks: usize) -> RcTree {
    let sinks = sinks.max(1);
    let n_internal = rng.gen_range(4..=14);
    let mut tree = RcTree::new(0.02e-15);
    let mut nodes: Vec<NodeId> = vec![RcTree::root()];
    for _ in 0..n_internal {
        let parent = nodes[rng.gen_range(0..nodes.len())];
        let r = rng.gen_range(50.0..600.0);
        let c = rng.gen_range(0.05e-15..0.6e-15);
        nodes.push(tree.add_node(parent, r, c));
    }
    // Attach each sink at the end of a fresh two-segment stub from a random
    // node so sinks never coincide with the root.
    for _ in 0..sinks {
        let parent = nodes[rng.gen_range(0..nodes.len())];
        let mid = tree.add_node(
            parent,
            rng.gen_range(50.0..600.0),
            rng.gen_range(0.05e-15..0.6e-15),
        );
        let sink = tree.add_node(
            mid,
            rng.gen_range(50.0..600.0),
            rng.gen_range(0.05e-15..0.6e-15),
        );
        tree.mark_sink(sink);
    }
    tree
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elmore::elmore_delay;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = NetGenConfig::default_28nm().with_fanout(2);
        let a = generate_net(&mut SmallRng::seed_from_u64(3), &cfg);
        let b = generate_net(&mut SmallRng::seed_from_u64(3), &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn longer_nets_have_larger_elmore() {
        let mut rng = SmallRng::seed_from_u64(1);
        let short = generate_net(
            &mut rng,
            &NetGenConfig::default_28nm().with_mean_length(10e-6),
        );
        let mut rng = SmallRng::seed_from_u64(1);
        let long = generate_net(
            &mut rng,
            &NetGenConfig::default_28nm().with_mean_length(100e-6),
        );
        let e_short = elmore_delay(&short, short.sinks()[0]);
        let e_long = elmore_delay(&long, long.sinks()[0]);
        assert!(
            e_long > e_short * 5.0,
            "Elmore grows superlinearly with length: {e_short} vs {e_long}"
        );
    }

    #[test]
    fn fanout_count_respected() {
        let mut rng = SmallRng::seed_from_u64(9);
        for f in 1..=6 {
            let t = generate_net(&mut rng, &NetGenConfig::default_28nm().with_fanout(f));
            assert_eq!(t.sinks().len(), f);
        }
    }

    #[test]
    fn random_net_has_positive_elements_and_sinks() {
        let mut rng = SmallRng::seed_from_u64(77);
        for k in 1..=4 {
            let t = random_net(&mut rng, k);
            assert_eq!(t.sinks().len(), k);
            for id in t.topo_order().skip(1) {
                assert!(t.res(id) > 0.0);
                assert!(t.cap(id) > 0.0);
            }
            // Sinks are never the root.
            assert!(t.sinks().iter().all(|&s| s != RcTree::root()));
        }
    }

    #[test]
    fn magnitudes_are_interconnect_like() {
        // A ~30 µm net at 4 Ω/µm & 0.2 fF/µm: total R ~ 120 Ω, C ~ 6 fF.
        let mut rng = SmallRng::seed_from_u64(42);
        let mut rs = 0.0;
        let mut cs = 0.0;
        let n = 200;
        for _ in 0..n {
            let t = generate_net(&mut rng, &NetGenConfig::default_28nm());
            rs += t.total_res();
            cs += t.total_cap();
        }
        let mean_r = rs / n as f64;
        let mean_c = cs / n as f64;
        assert!(mean_r > 40.0 && mean_r < 400.0, "mean R = {mean_r}");
        assert!(mean_c > 2e-15 && mean_c < 12e-15, "mean C = {mean_c}");
    }
}
