//! General (non-tree) RC networks via modified nodal analysis.
//!
//! Routed nets are trees, but coupling bridges, diode hookups and
//! post-layout resistor loops produce *meshes*. The fast wire estimator the
//! paper compares against (\[9\]) explicitly covers "tree and non-tree net
//! structures"; this module provides the reference machinery for the
//! non-tree case: impulse-response moments by repeated conductance solves,
//!
//! ```text
//! G·m₁ = C·1,   G·m₂ = C·m₁,   …
//! ```
//!
//! which reduce to Elmore/m₂ exactly on trees and generalize D2M/two-pole
//! to arbitrary RC topologies.

use self::linalgebra_shim::lu_solve_dense;
pub use self::linalgebra_shim::DenseError;
use crate::rctree::RcTree;

/// A node index within an [`RcMesh`]. Node 0 is the driver (root).
pub type MeshNode = usize;

/// A general RC network: resistors between node pairs (or to the root) and
/// grounded capacitances per node.
///
/// # Examples
///
/// ```
/// use nsigma_interconnect::mesh::RcMesh;
///
/// // A 3-node loop: root -R- a -R- b -R- root, caps at a and b.
/// let mut m = RcMesh::new(3);
/// m.add_resistor(0, 1, 100.0);
/// m.add_resistor(1, 2, 100.0);
/// m.add_resistor(2, 0, 100.0);
/// m.add_cap(1, 1e-15);
/// m.add_cap(2, 1e-15);
/// let (m1, _m2) = m.moments().expect("connected network");
/// // Symmetric loop: both sinks see the same first moment.
/// assert!((m1[1] - m1[2]).abs() < 1e-25);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RcMesh {
    n: usize,
    resistors: Vec<(usize, usize, f64)>,
    caps: Vec<f64>,
}

impl RcMesh {
    /// Creates a network with `n` nodes (node 0 is the driver) and no
    /// elements.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "a network needs the root and at least one node");
        Self {
            n,
            resistors: Vec::new(),
            caps: vec![0.0; n],
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if no elements were added yet.
    pub fn is_empty(&self) -> bool {
        self.resistors.is_empty()
    }

    /// Adds a resistor between two nodes.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range nodes, `a == b`, or non-positive resistance.
    pub fn add_resistor(&mut self, a: MeshNode, b: MeshNode, ohms: f64) {
        assert!(a < self.n && b < self.n, "node out of range");
        assert!(a != b, "resistor endpoints must differ");
        assert!(ohms > 0.0, "resistance must be positive");
        self.resistors.push((a, b, ohms));
    }

    /// Adds grounded capacitance at a node.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range node or negative capacitance.
    pub fn add_cap(&mut self, node: MeshNode, farads: f64) {
        assert!(node < self.n, "node out of range");
        assert!(farads >= 0.0, "capacitance must be non-negative");
        self.caps[node] += farads;
    }

    /// Converts a tree into the equivalent mesh (for cross-validation).
    pub fn from_tree(tree: &RcTree) -> Self {
        let mut mesh = Self::new(tree.len().max(2));
        for id in tree.topo_order() {
            if let Some(parent) = tree.parent(id) {
                mesh.add_resistor(parent.index(), id.index(), tree.res(id));
            }
            mesh.add_cap(id.index(), tree.cap(id));
        }
        mesh
    }

    /// First and second impulse-response moments at every node, driver at
    /// node 0 held at the source (grounded in the small-signal picture).
    ///
    /// # Errors
    ///
    /// Returns [`DenseError::Singular`] if some node is not resistively
    /// connected to the driver.
    pub fn moments(&self) -> Result<(Vec<f64>, Vec<f64>), DenseError> {
        // Reduced conductance matrix over nodes 1..n (node 0 is the source
        // reference and is eliminated).
        let m = self.n - 1;
        let mut g = vec![0.0; m * m];
        for &(a, b, ohms) in &self.resistors {
            let cond = 1.0 / ohms;
            if a > 0 {
                g[(a - 1) * m + (a - 1)] += cond;
            }
            if b > 0 {
                g[(b - 1) * m + (b - 1)] += cond;
            }
            if a > 0 && b > 0 {
                g[(a - 1) * m + (b - 1)] -= cond;
                g[(b - 1) * m + (a - 1)] -= cond;
            }
        }

        // m1 = G⁻¹ C·1 ; m2 = G⁻¹ C·m1.
        let c1: Vec<f64> = (1..self.n).map(|i| self.caps[i]).collect();
        let m1 = lu_solve_dense(&g, &c1, m)?;
        let cm1: Vec<f64> = (1..self.n).map(|i| self.caps[i] * m1[i - 1]).collect();
        let m2 = lu_solve_dense(&g, &cm1, m)?;

        let mut full1 = vec![0.0; self.n];
        let mut full2 = vec![0.0; self.n];
        full1[1..].copy_from_slice(&m1);
        full2[1..].copy_from_slice(&m2);
        Ok((full1, full2))
    }

    /// Two-pole 50 % delay estimate at a node (step at the driver).
    ///
    /// # Errors
    ///
    /// See [`RcMesh::moments`].
    ///
    /// # Panics
    ///
    /// Panics if `node` is the root or out of range.
    pub fn two_pole_delay(&self, node: MeshNode) -> Result<f64, DenseError> {
        assert!(
            node > 0 && node < self.n,
            "delay is measured at a non-root node"
        );
        let (m1, m2) = self.moments()?;
        Ok(crate::metrics::two_pole_delay(
            m1[node].max(1e-18),
            m2[node].max(1e-33),
        ))
    }
}

/// Minimal dense LU used by the mesh solver (kept local so the
/// interconnect crate does not depend on `nsigma-stats`).
mod linalgebra_shim {
    /// Error from the dense solve.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum DenseError {
        /// The matrix is singular to working precision (disconnected node).
        Singular,
    }

    impl std::fmt::Display for DenseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "conductance matrix is singular (disconnected node?)")
        }
    }

    impl std::error::Error for DenseError {}

    /// Solves `A x = b` for a dense row-major `n × n` matrix by LU with
    /// partial pivoting.
    pub fn lu_solve_dense(a: &[f64], b: &[f64], n: usize) -> Result<Vec<f64>, DenseError> {
        let mut lu = a.to_vec();
        let mut perm: Vec<usize> = (0..n).collect();
        for col in 0..n {
            let mut pivot = col;
            let mut max = lu[perm[col] * n + col].abs();
            for row in (col + 1)..n {
                let v = lu[perm[row] * n + col].abs();
                if v > max {
                    max = v;
                    pivot = row;
                }
            }
            if max < 1e-300 {
                return Err(DenseError::Singular);
            }
            perm.swap(col, pivot);
            let p = perm[col];
            let diag = lu[p * n + col];
            for &r in &perm[col + 1..n] {
                let f = lu[r * n + col] / diag;
                lu[r * n + col] = f;
                for j in (col + 1)..n {
                    lu[r * n + j] -= f * lu[p * n + j];
                }
            }
        }
        let mut y = vec![0.0; n];
        for i in 0..n {
            let r = perm[i];
            let mut sum = b[r];
            for k in 0..i {
                sum -= lu[r * n + k] * y[k];
            }
            y[i] = sum;
        }
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let r = perm[i];
            let mut sum = y[i];
            for k in (i + 1)..n {
                sum -= lu[r * n + k] * x[k];
            }
            x[i] = sum / lu[r * n + i];
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elmore::moments_all;
    use crate::generator::{generate_net, NetGenConfig};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn mesh_reduces_to_elmore_on_trees() {
        let mut rng = SmallRng::seed_from_u64(4);
        let tree = generate_net(&mut rng, &NetGenConfig::default_28nm().with_fanout(3));
        let mesh = RcMesh::from_tree(&tree);
        let (mesh_m1, mesh_m2) = mesh.moments().unwrap();
        let (tree_m1, tree_m2) = moments_all(&tree);
        for id in tree.topo_order() {
            let i = id.index();
            assert!(
                (mesh_m1[i] - tree_m1[i]).abs() <= 1e-9 * tree_m1[i].max(1e-18),
                "m1 at node {i}: {} vs {}",
                mesh_m1[i],
                tree_m1[i]
            );
            assert!(
                (mesh_m2[i] - tree_m2[i]).abs() <= 1e-9 * tree_m2[i].max(1e-30),
                "m2 at node {i}"
            );
        }
    }

    #[test]
    fn loop_resistance_speeds_the_far_node_up() {
        // A chain root-a-b; closing the loop b→root adds a second path and
        // must reduce b's effective delay.
        let mut chain = RcMesh::new(3);
        chain.add_resistor(0, 1, 200.0);
        chain.add_resistor(1, 2, 200.0);
        chain.add_cap(1, 1e-15);
        chain.add_cap(2, 2e-15);
        let open = chain.two_pole_delay(2).unwrap();

        let mut looped = chain.clone();
        looped.add_resistor(2, 0, 400.0);
        let closed = looped.two_pole_delay(2).unwrap();
        assert!(
            closed < open,
            "loop must speed the far node: {closed} vs {open}"
        );
    }

    #[test]
    fn symmetric_loop_has_symmetric_moments() {
        let mut m = RcMesh::new(3);
        m.add_resistor(0, 1, 150.0);
        m.add_resistor(0, 2, 150.0);
        m.add_resistor(1, 2, 300.0);
        m.add_cap(1, 1e-15);
        m.add_cap(2, 1e-15);
        let (m1, m2) = m.moments().unwrap();
        assert!((m1[1] - m1[2]).abs() < 1e-24);
        assert!((m2[1] - m2[2]).abs() < 1e-36);
    }

    #[test]
    fn disconnected_node_is_rejected() {
        let mut m = RcMesh::new(3);
        m.add_resistor(0, 1, 100.0);
        m.add_cap(2, 1e-15); // node 2 floats
        assert_eq!(m.moments(), Err(DenseError::Singular));
    }

    #[test]
    fn single_rc_matches_closed_form() {
        let mut m = RcMesh::new(2);
        m.add_resistor(0, 1, 1000.0);
        m.add_cap(1, 2e-15);
        let (m1, m2) = m.moments().unwrap();
        let rc = 2e-12;
        assert!((m1[1] - rc).abs() < 1e-24);
        assert!((m2[1] - rc * rc).abs() < 1e-36);
        let d = m.two_pole_delay(1).unwrap();
        assert!((d - core::f64::consts::LN_2 * rc).abs() / (core::f64::consts::LN_2 * rc) < 1e-6);
    }

    #[test]
    #[should_panic(expected = "resistor endpoints must differ")]
    fn self_loop_rejected() {
        let mut m = RcMesh::new(2);
        m.add_resistor(1, 1, 10.0);
    }
}
