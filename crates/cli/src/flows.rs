//! The CLI's three flows as library functions (unit-testable without a
//! subprocess): characterize, analyze and golden-check.

use crate::args::{Args, ArgsError};
use nsigma_cells::characterize::{characterize_cell, CharacterizeConfig};
use nsigma_cells::liberty::{write_liberty, LibertyCell};
use nsigma_cells::CellLibrary;
use nsigma_core::report::{report_path, report_worst_paths};
use nsigma_core::sta::{NsigmaTimer, TimerConfig};
use nsigma_core::{read_coefficients, write_coefficients, MergeRule, QueryError, TimingSession};
use nsigma_interconnect::spef;
use nsigma_mc::design::Design;
use nsigma_mc::path_sim::{find_critical_path, simulate_path_mc, PathMcConfig};
use nsigma_netlist::verilog::parse_verilog;
use nsigma_process::Technology;
use nsigma_server::{Client, Server, ServerConfig};
use nsigma_stats::quantile::{QuantileSet, SigmaLevel};
use nsigma_yield::{YieldAnalysis, YieldConfig, YieldReport, DEFAULT_IS_SHIFT};

/// A flow error: argument, IO or domain problem, with a printable message.
#[derive(Debug)]
pub struct FlowError(pub String);

impl std::fmt::Display for FlowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for FlowError {}

impl From<ArgsError> for FlowError {
    fn from(e: ArgsError) -> Self {
        FlowError(e.to_string())
    }
}

impl From<std::io::Error> for FlowError {
    fn from(e: std::io::Error) -> Self {
        FlowError(format!("io error: {e}"))
    }
}

impl From<QueryError> for FlowError {
    fn from(e: QueryError) -> Self {
        FlowError(format!("timing query: {e}"))
    }
}

fn err(msg: impl std::fmt::Display) -> FlowError {
    FlowError(msg.to_string())
}

/// `characterize`: build the library artifacts.
///
/// Options: `--coeff <out>` (required), `--lib <out.lib>`,
/// `--samples <n>` (default 5000), `--seed <n>`.
///
/// # Errors
///
/// Returns a [`FlowError`] on bad arguments, IO failure or a degenerate fit.
pub fn run_characterize(args: &Args) -> Result<String, FlowError> {
    let coeff_path = args.require("coeff")?;
    let samples = args.get_usize("samples", 5000)?;
    let seed = args.get_usize("seed", 1)? as u64;

    let tech = Technology::synthetic_28nm();
    let lib = CellLibrary::standard();
    let mut cfg = TimerConfig::standard(seed);
    cfg.char_samples = samples;
    let timer = NsigmaTimer::build(&tech, &lib, &cfg).map_err(err)?;
    std::fs::write(coeff_path, write_coefficients(&timer))?;

    let mut summary = format!(
        "characterized {} cells at {samples} samples/point; wrote {coeff_path}",
        lib.len()
    );
    if let Some(lib_path) = args.get("lib") {
        let ccfg = CharacterizeConfig::standard(samples, seed);
        let cells: Vec<LibertyCell> = lib
            .iter()
            .map(|(_, cell)| LibertyCell {
                cell: cell.clone(),
                grid: characterize_cell(&tech, cell, &ccfg),
            })
            .collect();
        std::fs::write(lib_path, write_liberty("nsigma28", &tech, &cells))?;
        summary.push_str(&format!("; wrote {lib_path}"));
    }
    Ok(summary)
}

/// Loads a design from `--verilog` (+ optional `--spef`), using the
/// coefficient file's technology.
fn load_design(args: &Args, tech: &Technology) -> Result<Design, FlowError> {
    let verilog_path = args.require("verilog")?;
    let text = std::fs::read_to_string(verilog_path)?;
    let lib = CellLibrary::standard();
    let netlist = parse_verilog(&text, &lib).map_err(err)?;
    let seed = args.get_usize("seed", 1)? as u64;
    let mut design = Design::with_generated_parasitics(tech.clone(), lib, netlist, seed);

    if let Some(spef_path) = args.get("spef") {
        let spef_text = std::fs::read_to_string(spef_path)?;
        let nets = spef::parse(&spef_text).map_err(err)?;
        for net in nets {
            let id = design
                .netlist
                .find_net(&net.name)
                .ok_or_else(|| err(format!("SPEF net '{}' not in the design", net.name)))?;
            design.set_parasitic(id, net.tree);
        }
    }
    Ok(design)
}

/// `analyze`: N-sigma timing of a Verilog design.
///
/// Options: `--verilog <file>` and `--coeff <file>` (required),
/// `--spef <file>`, `--clock <ps>`, `--paths <k>` (default 1),
/// `--sdf <out>`, `--seed <n>`.
///
/// # Errors
///
/// Returns a [`FlowError`] on bad arguments, parse failures or IO errors.
pub fn run_analyze(args: &Args) -> Result<String, FlowError> {
    let coeff_path = args.require("coeff")?;
    let tech = Technology::synthetic_28nm();
    let coeff_text = std::fs::read_to_string(coeff_path)?;
    let timer = read_coefficients(&tech, &coeff_text).map_err(err)?;
    let design = load_design(args, &tech)?;

    let clock = match args.get("clock") {
        Some(_) => Some(args.get_f64("clock", 0.0)? * 1e-12),
        None => None,
    };
    let k = args.get_usize("paths", 1)?;

    // One session for every query below: critical path, k-worst ranking
    // and SDF export all run off the same compiled graph, and a design
    // referencing uncalibrated cells is rejected here with a typed error
    // instead of panicking mid-query.
    let session = TimingSession::new(&timer, design, MergeRule::Pessimistic)?;

    let mut out = String::new();
    if k <= 1 {
        let (path, timing) = session
            .critical_path()
            .ok_or_else(|| err("design has no combinational path"))?;
        out.push_str(&report_path(session.design(), &path, &timing, clock));
    } else {
        out.push_str(&report_worst_paths(&session, k, clock));
    }

    if let Some(sdf_path) = args.get("sdf") {
        std::fs::write(sdf_path, session.sdf())?;
        out.push_str(&format!("\nwrote SDF to {sdf_path}\n"));
    }
    Ok(out)
}

/// `mc`: golden Monte-Carlo check of the critical path.
///
/// Options: `--verilog <file>` (required), `--spef <file>`,
/// `--samples <n>` (default 5000), `--seed <n>`.
///
/// # Errors
///
/// Returns a [`FlowError`] on bad arguments or parse failures.
pub fn run_mc(args: &Args) -> Result<String, FlowError> {
    let tech = Technology::synthetic_28nm();
    let design = load_design(args, &tech)?;
    let samples = args.get_usize("samples", 5000)?;
    let seed = args.get_usize("seed", 7)? as u64;
    let path =
        find_critical_path(&design).ok_or_else(|| err("design has no combinational path"))?;
    let golden = simulate_path_mc(
        &design,
        &path,
        &PathMcConfig {
            samples,
            seed,
            input_slew: 10e-12,
        },
    );
    let mut out = format!(
        "golden MC on the critical path ({} stages, {samples} trials, {:.2?}):\n",
        path.len(),
        golden.elapsed
    );
    for lvl in SigmaLevel::ALL {
        out.push_str(&format!(
            "  T({lvl}) = {:9.1} ps\n",
            golden.quantiles[lvl] * 1e12
        ));
    }
    out.push_str(&format!(
        "  mean {:.1} ps, sigma {:.1} ps, skewness {:.2}, kurtosis {:.2}\n",
        golden.moments.mean * 1e12,
        golden.moments.std * 1e12,
        golden.moments.skewness,
        golden.moments.kurtosis
    ));
    Ok(out)
}

/// Loads a design from `--iscas <name>` (a built-in ISCAS85 benchmark
/// with generated parasitics) or, failing that, from `--verilog`
/// (+ optional `--spef`) like [`load_design`].
fn load_design_any(args: &Args, tech: &Technology) -> Result<Design, FlowError> {
    use nsigma_netlist::generators::random_dag::Iscas85;
    use nsigma_netlist::mapping::map_to_cells;

    let Some(name) = args.get("iscas") else {
        return load_design(args, tech);
    };
    let bench = Iscas85::ALL
        .into_iter()
        .find(|b| b.name() == name)
        .ok_or_else(|| err(format!("unknown ISCAS85 benchmark '{name}'")))?;
    let lib = CellLibrary::standard();
    let netlist = map_to_cells(&bench.generate(), &lib).map_err(err)?;
    let seed = args.get_usize("seed", 1)? as u64;
    Ok(Design::with_generated_parasitics(
        tech.clone(),
        lib,
        netlist,
        seed,
    ))
}

/// `yield`: Monte-Carlo timing yield of a design at a clock period,
/// scored against the analytic N-sigma model.
///
/// Options: `--coeff <file>` (required) plus a design from
/// `--iscas <name>` or `--verilog <file.v>` [`--spef <file.spef>`];
/// `--target-period <ps>` (default: the analytic +3σ quantile),
/// `--ci <half-width>` (default 0.005), `--samples <n>` (default 20000),
/// `--chunk <n>`, `--threads <n>` (0 = all cores), `--seed <n>`,
/// `--importance` (mean-shifted sampling of the slow tail), `--json`
/// (machine-readable report, stable for a fixed seed).
///
/// # Errors
///
/// Returns a [`FlowError`] on bad arguments, IO failure, or an
/// out-of-range sampling configuration.
pub fn run_yield(args: &Args) -> Result<String, FlowError> {
    let coeff_path = args.require("coeff")?;
    let tech = Technology::synthetic_28nm();
    let coeff_text = std::fs::read_to_string(coeff_path)?;
    let timer = read_coefficients(&tech, &coeff_text).map_err(err)?;
    let design = load_design_any(args, &tech)?;
    let session = TimingSession::new(&timer, design, MergeRule::Pessimistic)?;

    let samples = args.get_usize("samples", 20_000)?;
    let cfg = YieldConfig {
        target_period: match args.get("target-period") {
            Some(_) => Some(args.get_f64("target-period", 0.0)? * 1e-12),
            None => None,
        },
        ci_half_width: args.get_f64("ci", 0.005)?,
        max_samples: samples,
        chunk: args.get_usize("chunk", samples.clamp(1, 512))?,
        threads: args.get_usize("threads", 0)?,
        seed: args.get_usize("seed", 0x11E1D)? as u64,
        importance: args.flag("importance").then_some(DEFAULT_IS_SHIFT),
        ..YieldConfig::default()
    };
    let report = session.yield_analysis(&cfg)?;
    Ok(if args.flag("json") {
        yield_json(&report)
    } else {
        yield_text(&report)
    })
}

/// Renders a yield report as one JSON object. Hand-rolled like the
/// server's writer; `elapsed` is deliberately omitted so the output is
/// byte-stable for a fixed seed (the CI smoke test compares two runs).
fn yield_json(r: &YieldReport) -> String {
    let quantiles = |q: &QuantileSet| {
        let vals: Vec<String> = q.as_array().iter().map(|v| format!("{v}")).collect();
        format!("[{}]", vals.join(","))
    };
    let curve: Vec<String> = r
        .curve
        .iter()
        .map(|p| {
            format!(
                "{{\"period\":{},\"analytic_yield\":{},\"mc_yield\":{},\"ci_lo\":{},\"ci_hi\":{}}}",
                p.period, p.analytic_yield, p.mc.value, p.mc.ci_lo, p.mc.ci_hi
            )
        })
        .collect();
    format!(
        concat!(
            "{{\"target_period\":{},\"yield\":{},\"ci_lo\":{},\"ci_hi\":{},",
            "\"ci_half_width\":{},\"converged\":{},\"samples\":{},\"ess\":{},",
            "\"importance_shift\":{},\"analytic_yield\":{},",
            "\"analytic_quantiles\":{},\"mc_quantiles\":{},\"curve\":[{}],",
            "\"threads\":{}}}"
        ),
        r.target_period,
        r.estimate.value,
        r.estimate.ci_lo,
        r.estimate.ci_hi,
        r.estimate.half_width(),
        r.converged,
        r.samples,
        r.ess,
        r.importance_shift,
        r.analytic_yield,
        quantiles(&r.analytic_quantiles),
        quantiles(&r.mc_quantiles),
        curve.join(","),
        r.threads
    )
}

/// Renders a yield report for humans.
fn yield_text(r: &YieldReport) -> String {
    let mut out = format!(
        "timing yield at T = {:.1} ps ({} trials, {} thread(s), {:.2?}):\n",
        r.target_period * 1e12,
        r.samples,
        r.threads,
        r.elapsed
    );
    out.push_str(&format!(
        "  yield {:.5}  (95% CI [{:.5}, {:.5}], half-width {:.5}, {})\n",
        r.estimate.value,
        r.estimate.ci_lo,
        r.estimate.ci_hi,
        r.estimate.half_width(),
        if r.converged {
            "converged"
        } else {
            "sample cap"
        }
    ));
    if r.importance_shift > 0.0 {
        out.push_str(&format!(
            "  importance sampling: shift {:.1}σ, ESS {:.1}\n",
            r.importance_shift, r.ess
        ));
    }
    out.push_str(&format!(
        "  analytic model yield at T: {:.5}\n",
        r.analytic_yield
    ));
    out.push_str("  level   analytic (ps)   MC (ps)\n");
    for lvl in SigmaLevel::ALL {
        out.push_str(&format!(
            "  {lvl:>5}   {:13.1}   {:7.1}\n",
            r.analytic_quantiles[lvl] * 1e12,
            r.mc_quantiles[lvl] * 1e12
        ));
    }
    out.push_str("  yield-vs-period curve:\n");
    out.push_str("    period (ps)   analytic   MC [lo, hi]\n");
    for p in &r.curve {
        out.push_str(&format!(
            "    {:11.1}   {:8.5}   {:.5} [{:.5}, {:.5}]\n",
            p.period * 1e12,
            p.analytic_yield,
            p.mc.value,
            p.mc.ci_lo,
            p.mc.ci_hi
        ));
    }
    out
}

/// `lint`: static analysis of a design (and optionally a model) without
/// running any timing query.
///
/// Exactly one input selector: `--bench <file.bench>`,
/// `--verilog <file.v>` (with optional `--spef <file.spef>`),
/// `--iscas <name>`, or `--suite generated` (every built-in ISCAS85 and
/// arithmetic generator). With `--coeff <file>` the loaded model is also
/// linted and library coverage is checked. `--ndjson` switches the output
/// to newline-delimited JSON. `--seed N` seeds parasitic generation.
///
/// # Errors
///
/// Returns a [`FlowError`] on bad arguments or IO failure, and — so the
/// process exits nonzero — when any error-severity diagnostic is found.
pub fn run_lint(args: &Args) -> Result<String, FlowError> {
    use nsigma_netlist::generators::arith::{ripple_adder, ripple_subtractor};
    use nsigma_netlist::generators::arith_fast::cla_adder;
    use nsigma_netlist::generators::random_dag::Iscas85;
    use nsigma_netlist::logic::LogicCircuit;
    use nsigma_netlist::mapping::map_to_cells;

    let seed = args.get_usize("seed", 1)? as u64;
    let tech = Technology::synthetic_28nm();
    let lib = CellLibrary::standard();
    let timer = match args.get("coeff") {
        Some(path) => {
            let text = std::fs::read_to_string(path)?;
            Some(read_coefficients(&tech, &text).map_err(err)?)
        }
        None => None,
    };

    let mut report = nsigma_lint::LintReport::new();
    let mut targets = 0usize;

    // Builds the design for a logic circuit and runs the structural,
    // parasitic and (when a model is loaded) coverage passes.
    let lint_circuit = |circuit: &LogicCircuit, report: &mut nsigma_lint::LintReport| {
        let netlist = match map_to_cells(circuit, &lib) {
            Ok(n) => n,
            Err(e) => {
                // Mapping rejects what the structural lint already
                // explains (e.g. a cycle); keep its diagnostics instead.
                let mut r = nsigma_lint::lint_logic(circuit);
                if r.is_clean() {
                    r.push(
                        "NL006",
                        nsigma_lint::Severity::Error,
                        nsigma_lint::Location::Object(format!("circuit '{}'", circuit.name)),
                        format!("technology mapping failed: {e}"),
                    );
                }
                report.merge(r);
                return;
            }
        };
        let design = Design::with_generated_parasitics(tech.clone(), lib.clone(), netlist, seed);
        match &timer {
            Some(t) => report.merge(nsigma_lint::lint_design(&design, t)),
            None => {
                report.merge(nsigma_lint::lint_netlist(&design.netlist, &design.lib));
                report.merge(nsigma_lint::lint_parasitics(&design));
            }
        }
    };

    if let Some(bench_path) = args.get("bench") {
        let text = std::fs::read_to_string(bench_path)?;
        let (circuit, r) = nsigma_lint::lint_bench_text(bench_path, &text);
        targets += 1;
        if let Some(circuit) = circuit {
            if r.is_clean() {
                lint_circuit(&circuit, &mut report);
            }
        }
        report.merge(r);
    } else if let Some(name) = args.get("iscas") {
        let bench = Iscas85::ALL
            .into_iter()
            .find(|b| b.name() == name)
            .ok_or_else(|| err(format!("unknown ISCAS85 benchmark '{name}'")))?;
        targets += 1;
        lint_circuit(&bench.generate(), &mut report);
    } else if args.get("verilog").is_some() {
        let verilog_path = args.require("verilog")?;
        let text = std::fs::read_to_string(verilog_path)?;
        let netlist = parse_verilog(&text, &lib).map_err(err)?;
        targets += 1;
        report.merge(nsigma_lint::lint_netlist(&netlist, &lib));
        let mut design =
            Design::with_generated_parasitics(tech.clone(), lib.clone(), netlist, seed);
        if let Some(spef_path) = args.get("spef") {
            let spef_text = std::fs::read_to_string(spef_path)?;
            let (nets, r) = nsigma_lint::lint_spef_text(spef_path, &spef_text);
            report.merge(r);
            if let Some(nets) = nets {
                report.merge(nsigma_lint::lint_spef_vs_netlist(
                    &design.netlist,
                    &nets,
                    spef_path,
                ));
                for net in nets {
                    if let Some(id) = design.netlist.find_net(&net.name) {
                        if design.netlist.fanout(id) == net.tree.sinks().len() {
                            design.set_parasitic(id, net.tree);
                        }
                    }
                }
            }
        }
        report.merge(nsigma_lint::lint_parasitics(&design));
        if let Some(t) = &timer {
            report.merge(nsigma_lint::lint_coverage(&design, t));
        }
    } else if let Some(suite) = args.get("suite") {
        if suite != "generated" {
            return Err(err(format!("unknown suite '{suite}' (try 'generated')")));
        }
        for bench in Iscas85::ALL {
            targets += 1;
            lint_circuit(&bench.generate(), &mut report);
        }
        for circuit in [ripple_adder(8), ripple_subtractor(8), cla_adder(8)] {
            targets += 1;
            lint_circuit(&circuit, &mut report);
        }
    } else {
        return Err(err(
            "lint needs one of --bench, --verilog, --iscas or --suite generated",
        ));
    }

    if let Some(t) = &timer {
        report.merge(nsigma_lint::lint_model(t, Some(&lib)));
    }

    let rendered = if args.flag("ndjson") {
        report.render_ndjson()
    } else {
        let (e, w, i) = report.counts();
        format!(
            "{}linted {targets} target(s): {e} error(s), {w} warning(s), {i} info(s)",
            report
                .diagnostics
                .iter()
                .map(|d| format!("{d}\n"))
                .collect::<String>()
        )
    };
    if report.has_errors() {
        return Err(FlowError(format!("lint failed\n{rendered}")));
    }
    Ok(rendered)
}

/// `serve`: run the timing-query daemon until a client sends `shutdown`.
///
/// Options: `--port <n>` (default 7227; 0 picks an ephemeral port),
/// `--threads <n>` (default 4), `--queue <n>` (default 64),
/// `--deadline-ms <n>` (default 5000), `--samples <n>` (default 3000),
/// `--seed <n>`, `--coeff <file>` (reload coefficients if the file
/// exists, else build once and write them there), `--no-lint` (register
/// designs without the lint gate).
///
/// # Errors
///
/// Returns a [`FlowError`] on bad arguments, bind failure, or a broken
/// coefficients file.
pub fn run_serve(args: &Args) -> Result<String, FlowError> {
    let port = args.get_usize("port", 7227)?;
    let samples = args.get_usize("samples", 3000)?;
    let seed = args.get_usize("seed", 1)? as u64;
    let mut timer_cfg = TimerConfig::standard(seed);
    timer_cfg.char_samples = samples;
    let cfg = ServerConfig {
        addr: format!("127.0.0.1:{port}"),
        threads: args.get_usize("threads", 4)?,
        queue_capacity: args.get_usize("queue", 64)?,
        deadline: std::time::Duration::from_millis(args.get_usize("deadline-ms", 5000)? as u64),
        timer: timer_cfg,
        coeff_path: args.get("coeff").map(std::path::PathBuf::from),
        lint_on_register: !args.flag("no-lint"),
        ..ServerConfig::default()
    };
    let handle = Server::start(cfg)?;
    println!("nsigma-server listening on {}", handle.addr());
    use std::io::Write as _;
    std::io::stdout().flush().ok();
    handle.wait();
    Ok("server stopped".into())
}

/// `query`: send one protocol line to a running server and print the
/// response.
///
/// Options: `--port <n>` (required), `--host <addr>` (default
/// `127.0.0.1`), `--send <json-line>` (required).
///
/// # Errors
///
/// Returns a [`FlowError`] on bad arguments or connection failure.
pub fn run_query(args: &Args) -> Result<String, FlowError> {
    let host = args.get("host").unwrap_or("127.0.0.1").to_string();
    let port = args
        .require("port")?
        .parse::<u16>()
        .map_err(|_| err("option --port: not a port number"))?;
    let line = args.require("send")?;
    let mut client = Client::connect((host.as_str(), port))?;
    Ok(client.request_line(line)?)
}

/// Usage text.
pub fn usage() -> &'static str {
    "nsigma-sta — N-sigma statistical timing (Jin et al., DATE 2023 reproduction)

USAGE:
  nsigma-sta characterize --coeff <out.txt> [--lib <out.lib>] [--samples N] [--seed N]
  nsigma-sta analyze --verilog <file.v> --coeff <coeff.txt>
                     [--spef <file.spef>] [--clock <ps>] [--paths K]
                     [--sdf <out.sdf>] [--seed N]
  nsigma-sta mc --verilog <file.v> [--spef <file.spef>] [--samples N] [--seed N]
  nsigma-sta yield --coeff <coeff.txt> (--iscas <name> | --verilog <file.v> [--spef <file.spef>])
                   [--target-period <ps>] [--ci <half-width>] [--samples N] [--chunk N]
                   [--threads N] [--seed N] [--importance] [--json]
  nsigma-sta lint (--bench <file.bench> | --verilog <file.v> [--spef <file.spef>]
                   | --iscas <name> | --suite generated)
                  [--coeff <coeff.txt>] [--ndjson] [--seed N]
  nsigma-sta serve [--port N] [--threads N] [--queue N] [--deadline-ms N]
                   [--samples N] [--seed N] [--coeff <coeff.txt>] [--no-lint]
  nsigma-sta query --port N [--host ADDR] --send <json-request-line>

The synthetic 28 nm technology is built in; cells must come from the
standard library (INV/BUF/NAND2/NOR2/AOI2/OAI2/XOR2 at x1/x2/x4/x8).
`lint` exits nonzero when any error-severity diagnostic is found; the
code reference lives in the nsigma-lint crate docs and DESIGN.md.
`serve` speaks newline-delimited JSON; see the nsigma-server crate docs
for the request grammar."
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Args;
    use nsigma_netlist::generators::arith::ripple_adder;
    use nsigma_netlist::mapping::map_to_cells;
    use nsigma_netlist::verilog::write_verilog;

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("nsigma-cli-tests");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        dir.join(name).to_string_lossy().into_owned()
    }

    fn argv(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(|t| t.to_string())).unwrap()
    }

    /// Builds a tiny coefficient file quickly (small custom library would
    /// not match the standard-cell names, so use the standard library with
    /// few samples).
    fn quick_coeff_file() -> String {
        let path = tmp("coeff.txt");
        if std::path::Path::new(&path).exists() {
            return path;
        }
        let tech = Technology::synthetic_28nm();
        let lib = CellLibrary::standard();
        let mut cfg = TimerConfig::standard(3);
        cfg.char_samples = 400;
        cfg.wire.nets = 1;
        cfg.wire.samples = 300;
        let timer = NsigmaTimer::build(&tech, &lib, &cfg).unwrap();
        std::fs::write(&path, write_coefficients(&timer)).unwrap();
        path
    }

    fn quick_verilog_file() -> String {
        let path = tmp("adder.v");
        let lib = CellLibrary::standard();
        let nl = map_to_cells(&ripple_adder(4), &lib).unwrap();
        std::fs::write(&path, write_verilog(&nl, &lib)).unwrap();
        path
    }

    #[test]
    fn analyze_flow_end_to_end() {
        let coeff = quick_coeff_file();
        let v = quick_verilog_file();
        let sdf = tmp("adder.sdf");
        let args = argv(&format!(
            "analyze --verilog {v} --coeff {coeff} --clock 3000 --sdf {sdf}"
        ));
        let report = run_analyze(&args).unwrap();
        assert!(report.contains("Startpoint:"));
        assert!(report.contains("T(+3σ)"));
        assert!(report.contains("slack"));
        let sdf_text = std::fs::read_to_string(&sdf).unwrap();
        assert!(sdf_text.starts_with("(DELAYFILE"));
    }

    #[test]
    fn analyze_multi_path() {
        let coeff = quick_coeff_file();
        let v = quick_verilog_file();
        let args = argv(&format!("analyze --verilog {v} --coeff {coeff} --paths 2"));
        let report = run_analyze(&args).unwrap();
        assert_eq!(report.matches("==== path").count(), 2);
    }

    #[test]
    fn mc_flow_reports_quantiles() {
        let v = quick_verilog_file();
        let args = argv(&format!("mc --verilog {v} --samples 300"));
        let out = run_mc(&args).unwrap();
        assert!(out.contains("T(+3σ)"));
        assert!(out.contains("skewness"));
    }

    #[test]
    fn yield_flow_json_is_seed_deterministic() {
        let coeff = quick_coeff_file();
        let args = argv(&format!(
            "yield --coeff {coeff} --iscas c432 --samples 400 --chunk 100 --ci 0.05 --seed 9 --json"
        ));
        let out = run_yield(&args).unwrap();
        for key in [
            "\"yield\":",
            "\"ci_lo\":",
            "\"ci_hi\":",
            "\"ci_half_width\":",
            "\"samples\":",
            "\"ess\":",
            "\"curve\":",
            "\"analytic_quantiles\":",
        ] {
            assert!(out.contains(key), "missing {key} in {out}");
        }
        assert_eq!(out, run_yield(&args).unwrap(), "fixed seed must repeat");
    }

    #[test]
    fn yield_flow_human_report_with_importance() {
        let coeff = quick_coeff_file();
        let v = quick_verilog_file();
        let args = argv(&format!(
            "yield --coeff {coeff} --verilog {v} --samples 400 --chunk 100 --ci 0.05 --importance"
        ));
        let out = run_yield(&args).unwrap();
        assert!(out.contains("timing yield at T ="), "{out}");
        assert!(out.contains("ESS"), "{out}");
        assert!(out.contains("yield-vs-period curve"), "{out}");
    }

    #[test]
    fn yield_flow_rejects_bad_inputs() {
        let coeff = quick_coeff_file();
        let e =
            run_yield(&argv(&format!("yield --coeff {coeff} --iscas c432 --ci 0"))).unwrap_err();
        assert!(e.to_string().contains("ci_half_width"), "{e}");
        assert!(run_yield(&argv(&format!("yield --coeff {coeff} --iscas c17"))).is_err());
        assert!(run_yield(&argv("yield --iscas c432")).is_err()); // no --coeff
    }

    #[test]
    fn missing_files_are_reported() {
        let args = argv("analyze --verilog /nonexistent.v --coeff /nonexistent.txt");
        let e = run_analyze(&args).unwrap_err();
        assert!(e.to_string().contains("io error"));
        let args = argv("analyze");
        assert!(run_analyze(&args).is_err());
    }

    #[test]
    fn query_flow_round_trips_against_a_server() {
        // Reloading the test coefficients file skips recharacterization,
        // so the server starts in milliseconds.
        let coeff = quick_coeff_file();
        let cfg = ServerConfig {
            threads: 1,
            coeff_path: Some(coeff.into()),
            ..ServerConfig::default()
        };
        let handle = Server::start(cfg).unwrap();
        let port = handle.port().to_string();

        let args = argv_vec(vec![
            "query",
            "--port",
            &port,
            "--send",
            r#"{"cmd":"stats"}"#,
        ]);
        let out = run_query(&args).unwrap();
        assert!(out.contains(r#""ok":true"#), "{out}");
        assert!(out.contains("stage_cache"), "{out}");

        let args = argv_vec(vec!["query", "--port", &port, "--send", "not json"]);
        let out = run_query(&args).unwrap();
        assert!(out.contains(r#""code":"bad_request""#), "{out}");

        handle.shutdown();
    }

    fn argv_vec(tokens: Vec<&str>) -> Args {
        Args::parse(tokens.into_iter().map(|t| t.to_string())).unwrap()
    }

    #[test]
    fn spef_override_is_consumed() {
        let coeff = quick_coeff_file();
        let v = quick_verilog_file();
        // Build a SPEF for one real net of the design.
        let tech = Technology::synthetic_28nm();
        let lib = CellLibrary::standard();
        let text = std::fs::read_to_string(&v).unwrap();
        let nl = parse_verilog(&text, &lib).unwrap();
        let design = Design::with_generated_parasitics(tech, lib, nl, 1);
        let net = design
            .netlist
            .net_ids()
            .find(|&n| design.parasitic(n).is_some())
            .unwrap();
        let spef_text = spef::write(&[spef::SpefNet {
            name: design.netlist.net(net).name.clone(),
            tree: design.parasitic(net).unwrap().clone(),
        }]);
        let spef_path = tmp("one_net.spef");
        std::fs::write(&spef_path, spef_text).unwrap();

        let args = argv(&format!(
            "analyze --verilog {v} --coeff {coeff} --spef {spef_path}"
        ));
        assert!(run_analyze(&args).is_ok());

        // A SPEF with an unknown net is rejected.
        let bad = spef::write(&[spef::SpefNet {
            name: "ghost_net".into(),
            tree: nsigma_interconnect::rctree::RcTree::new(1e-16),
        }]);
        let bad_path = tmp("bad.spef");
        std::fs::write(&bad_path, bad).unwrap();
        let args = argv(&format!(
            "analyze --verilog {v} --coeff {coeff} --spef {bad_path}"
        ));
        assert!(run_analyze(&args).is_err());
    }
}
