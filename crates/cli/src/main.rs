//! `nsigma-sta` — the command-line front end of the N-sigma statistical
//! timing reproduction (Jin et al., DATE 2023).
//!
//! ```text
//! nsigma-sta characterize --coeff coeff.txt --lib nsigma28.lib
//! nsigma-sta analyze --verilog design.v --coeff coeff.txt --clock 2000 --sdf out.sdf
//! nsigma-sta mc --verilog design.v --samples 5000
//! ```

mod args;
mod flows;

use args::Args;
use flows::{
    run_analyze, run_characterize, run_lint, run_mc, run_query, run_serve, run_yield, usage,
};

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match Args::parse(argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", usage());
            std::process::exit(2);
        }
    };
    let result = match parsed.command.as_str() {
        "characterize" => run_characterize(&parsed),
        "analyze" => run_analyze(&parsed),
        "mc" => run_mc(&parsed),
        "yield" => run_yield(&parsed),
        "lint" => run_lint(&parsed),
        "serve" => run_serve(&parsed),
        "query" => run_query(&parsed),
        "help" | "-h" | "--help" => {
            println!("{}", usage());
            return;
        }
        other => {
            eprintln!("error: unknown subcommand '{other}'\n\n{}", usage());
            std::process::exit(2);
        }
    };
    match result {
        Ok(output) => println!("{output}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
