//! Minimal argument parsing for `nsigma-sta` — `--key value` pairs and
//! positional subcommands, with no external dependency.

use std::collections::HashMap;

/// Parsed command line: a subcommand plus `--key value` options.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Args {
    /// The subcommand (first positional argument).
    pub command: String,
    /// `--key value` options.
    options: HashMap<String, String>,
    /// `--flag` options without values.
    flags: Vec<String>,
}

/// Error produced while parsing the command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgsError {
    /// No subcommand given.
    MissingCommand,
    /// An option was given without a value (`--key` at end or before
    /// another `--key`) when a value was required later.
    MissingValue(String),
    /// A required option is absent.
    Required(String),
    /// A numeric option failed to parse.
    BadNumber(String, String),
}

impl std::fmt::Display for ArgsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgsError::MissingCommand => write!(f, "missing subcommand"),
            ArgsError::MissingValue(k) => write!(f, "option --{k} needs a value"),
            ArgsError::Required(k) => write!(f, "required option --{k} is missing"),
            ArgsError::BadNumber(k, v) => write!(f, "option --{k}: '{v}' is not a number"),
        }
    }
}

impl std::error::Error for ArgsError {}

impl Args {
    /// Parses an argument vector (excluding the program name).
    ///
    /// Tokens starting with `--` become options; a following token that is
    /// not itself an option becomes the value, otherwise the option is a
    /// bare flag.
    ///
    /// # Errors
    ///
    /// Returns [`ArgsError::MissingCommand`] if the first token is absent
    /// or is an option.
    pub fn parse<I: IntoIterator<Item = String>>(argv: I) -> Result<Self, ArgsError> {
        let tokens: Vec<String> = argv.into_iter().collect();
        let mut it = tokens.into_iter().peekable();
        let command = match it.next() {
            Some(c) if !c.starts_with("--") => c,
            _ => return Err(ArgsError::MissingCommand),
        };
        let mut options = HashMap::new();
        let mut flags = Vec::new();
        while let Some(tok) = it.next() {
            let key = tok.trim_start_matches("--").to_string();
            match it.peek() {
                Some(v) if !v.starts_with("--") => {
                    options.insert(key, it.next().expect("peeked"));
                }
                _ => flags.push(key),
            }
        }
        Ok(Self {
            command,
            options,
            flags,
        })
    }

    /// An optional string option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(|s| s.as_str())
    }

    /// A required string option.
    ///
    /// # Errors
    ///
    /// Returns [`ArgsError::MissingValue`] when the key was given as a bare
    /// `--flag` with no value, and [`ArgsError::Required`] when absent.
    pub fn require(&self, key: &str) -> Result<&str, ArgsError> {
        self.get(key).ok_or_else(|| {
            if self.flag(key) {
                ArgsError::MissingValue(key.into())
            } else {
                ArgsError::Required(key.into())
            }
        })
    }

    /// An optional numeric option with a default.
    ///
    /// # Errors
    ///
    /// Returns [`ArgsError::MissingValue`] when given as a bare flag and
    /// [`ArgsError::BadNumber`] when present but unparsable.
    pub fn get_f64(&self, key: &str, default: f64) -> Result<f64, ArgsError> {
        match self.get(key) {
            None if self.flag(key) => Err(ArgsError::MissingValue(key.into())),
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgsError::BadNumber(key.into(), v.into())),
        }
    }

    /// An optional integer option with a default.
    ///
    /// # Errors
    ///
    /// Returns [`ArgsError::MissingValue`] when given as a bare flag and
    /// [`ArgsError::BadNumber`] when present but unparsable.
    pub fn get_usize(&self, key: &str, default: usize) -> Result<usize, ArgsError> {
        match self.get(key) {
            None if self.flag(key) => Err(ArgsError::MissingValue(key.into())),
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgsError::BadNumber(key.into(), v.into())),
        }
    }

    /// True if a bare `--flag` was given.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(|t| t.to_string()).collect()
    }

    #[test]
    fn parses_command_options_and_flags() {
        let a = Args::parse(argv("analyze --verilog x.v --paths 3 --quiet")).unwrap();
        assert_eq!(a.command, "analyze");
        assert_eq!(a.get("verilog"), Some("x.v"));
        assert_eq!(a.get_usize("paths", 1).unwrap(), 3);
        assert!(a.flag("quiet"));
        assert!(!a.flag("verbose"));
    }

    #[test]
    fn missing_command_rejected() {
        assert_eq!(
            Args::parse(argv("--verilog x.v")),
            Err(ArgsError::MissingCommand)
        );
        assert_eq!(Args::parse(Vec::new()), Err(ArgsError::MissingCommand));
    }

    #[test]
    fn required_and_bad_number() {
        let a = Args::parse(argv("analyze --samples abc")).unwrap();
        assert_eq!(
            a.require("verilog"),
            Err(ArgsError::Required("verilog".into()))
        );
        assert!(matches!(
            a.get_usize("samples", 10),
            Err(ArgsError::BadNumber(_, _))
        ));
    }

    #[test]
    fn bare_flag_for_valued_option_is_missing_value() {
        let a = Args::parse(argv("analyze --coeff --paths 3")).unwrap();
        assert_eq!(
            a.require("coeff"),
            Err(ArgsError::MissingValue("coeff".into()))
        );
        let b = Args::parse(argv("mc --samples")).unwrap();
        assert_eq!(
            b.get_usize("samples", 10),
            Err(ArgsError::MissingValue("samples".into()))
        );
        assert_eq!(
            b.get_f64("samples", 10.0),
            Err(ArgsError::MissingValue("samples".into()))
        );
    }

    #[test]
    fn defaults_apply() {
        let a = Args::parse(argv("mc")).unwrap();
        assert_eq!(a.get_f64("clock", 1.5).unwrap(), 1.5);
        assert_eq!(a.get_usize("samples", 5000).unwrap(), 5000);
    }
}
