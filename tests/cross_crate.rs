//! Cross-crate integration: substrate pieces composed in ways no single
//! crate's unit tests cover (SPEF round trips through designs, .bench
//! through the golden simulator, baselines over generated benchmarks).

use nsigma::baselines::cell_fit::{burr_quantiles, lsn_quantiles};
use nsigma::cells::cell::{Cell, CellKind};
use nsigma::cells::timing::sample_arc;
use nsigma::cells::CellLibrary;
use nsigma::interconnect::spef::{parse as parse_spef, write as write_spef, SpefNet};
use nsigma::mc::design::Design;
use nsigma::mc::path_sim::{
    find_critical_path, simulate_circuit_mc, simulate_path_mc, PathMcConfig,
};
use nsigma::netlist::bench_format;
use nsigma::netlist::generators::random_dag::Iscas85;
use nsigma::netlist::mapping::map_to_cells;
use nsigma::process::{Technology, VariationModel};
use nsigma::stats::quantile::{QuantileSet, SigmaLevel};
use rand::rngs::SmallRng;
use rand::SeedableRng;

#[test]
fn bench_text_to_golden_mc() {
    // .bench text → logic → mapped netlist → design → golden MC.
    let text = "\
INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\n\
w1 = NAND(a, b)\nw2 = XOR(w1, c)\nw3 = NOR(w2, a)\ny = NOT(w3)\n";
    let logic = bench_format::parse("mini", text).expect("parses");
    let lib = CellLibrary::standard();
    let netlist = map_to_cells(&logic, &lib).expect("maps");
    let design = Design::with_generated_parasitics(Technology::synthetic_28nm(), lib, netlist, 77);
    let path = find_critical_path(&design).expect("path");
    let r = simulate_path_mc(
        &design,
        &path,
        &PathMcConfig {
            samples: 500,
            seed: 1,
            input_slew: 10e-12,
        },
    );
    assert!(r.moments.mean > 0.0);
    assert!(r.quantiles.is_monotone());
}

#[test]
fn design_parasitics_survive_spef_round_trip() {
    let lib = CellLibrary::standard();
    let netlist = map_to_cells(&Iscas85::C432.generate(), &lib).expect("maps");
    let design = Design::with_generated_parasitics(Technology::synthetic_28nm(), lib, netlist, 3);

    // Export every net's parasitics to SPEF-lite and read them back.
    let nets: Vec<SpefNet> = design
        .netlist
        .net_ids()
        .filter_map(|n| {
            design.parasitic(n).map(|tree| SpefNet {
                name: design.netlist.net(n).name.clone(),
                tree: tree.clone(),
            })
        })
        .collect();
    assert!(
        nets.len() > 500,
        "c432 has many routed nets: {}",
        nets.len()
    );
    let text = write_spef(&nets);
    let parsed = parse_spef(&text).expect("SPEF parses back");
    assert_eq!(parsed, nets);
}

#[test]
fn circuit_mc_bounds_path_mc_on_a_benchmark() {
    let lib = CellLibrary::standard();
    let netlist = map_to_cells(&Iscas85::C432.generate(), &lib).expect("maps");
    let design = Design::with_generated_parasitics(Technology::synthetic_28nm(), lib, netlist, 4);
    let cfg = PathMcConfig {
        samples: 300,
        seed: 6,
        input_slew: 10e-12,
    };
    let path = find_critical_path(&design).expect("path");
    let path_mc = simulate_path_mc(&design, &path, &cfg);
    let circuit_mc = simulate_circuit_mc(&design, &cfg);
    assert!(
        circuit_mc.moments.mean >= path_mc.moments.mean * 0.9,
        "max over POs {:.1} ps should not fall far below the nominal critical path {:.1} ps",
        circuit_mc.moments.mean * 1e12,
        path_mc.moments.mean * 1e12
    );
}

#[test]
fn table_ii_ordering_holds_cross_crate() {
    // N-sigma (empirical quantiles here) ≤ LSN ≤ Burr at the +3σ tail, on a
    // cell none of those crates generated themselves.
    let tech = Technology::synthetic_28nm();
    let variation = VariationModel::new(&tech);
    let cell = Cell::new(CellKind::Oai21, 2);
    let mut rng = SmallRng::seed_from_u64(99);
    let load = 4.0 * cell.input_cap(&tech);
    let xs: Vec<f64> = (0..8000)
        .map(|_| {
            let g = variation.sample_global(&mut rng);
            sample_arc(&tech, &variation, &cell, 10e-12, load, &g, &mut rng).delay
        })
        .collect();
    let golden = QuantileSet::from_samples(&xs);
    let lsn = lsn_quantiles(&xs).expect("lsn");
    let burr = burr_quantiles(&xs).expect("burr");
    let e = |q: &QuantileSet| {
        ((q[SigmaLevel::PlusThree] - golden[SigmaLevel::PlusThree]) / golden[SigmaLevel::PlusThree])
            .abs()
    };
    assert!(
        e(&lsn) <= e(&burr),
        "LSN {:.3} should fit at least as well as Burr {:.3}",
        e(&lsn),
        e(&burr)
    );
}

#[test]
fn pulpino_unit_depths_are_ordered() {
    use nsigma::netlist::generators::arith::{array_multiplier, restoring_divider, ripple_adder};
    use nsigma::netlist::topo::depth;
    let lib = CellLibrary::standard();
    let add = map_to_cells(&ripple_adder(16), &lib).expect("add");
    let mul = map_to_cells(&array_multiplier(8), &lib).expect("mul");
    let div = map_to_cells(&restoring_divider(8), &lib).expect("div");
    // DIV is the deepest, as in the paper's runtime/delay ordering.
    assert!(depth(&div) > depth(&mul));
    assert!(depth(&mul) > depth(&add) / 2);
}
