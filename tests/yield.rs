//! Integration tests of the yield engine against the full stack: a
//! fixed-seed c432 tail regression (the paper's 99.86 % sign-off
//! quantile), thread-schedule determinism at the session API, and a
//! property test that importance sampling and plain Monte Carlo agree
//! within their confidence intervals on small circuits.

use nsigma::cells::CellLibrary;
use nsigma::core::sta::{NsigmaTimer, TimerConfig};
use nsigma::core::{MergeRule, TimingSession};
use nsigma::mc::design::Design;
use nsigma::netlist::generators::arith::ripple_adder;
use nsigma::netlist::generators::random_dag::Iscas85;
use nsigma::netlist::mapping::map_to_cells;
use nsigma::process::Technology;
use nsigma::stats::quantile::SigmaLevel;
use nsigma::yield_engine::{YieldAnalysis, YieldConfig, DEFAULT_IS_SHIFT};
use proptest::prelude::*;
use std::sync::OnceLock;

const SEED: u64 = 11;
const PARASITIC_SEED: u64 = 7;

/// Pinned +3σ (99.86 %) empirical tail quantile of c432 under the shared
/// timer at the fixed seed below, in ps. Regression guard: a change to
/// the sampling kernel, the RNG streams or the characterization that
/// moves the tail by more than 2 % must be deliberate.
const C432_TAIL_PS: f64 = 3399.7;

/// Pinned Monte-Carlo yield of c432 at its analytic +3σ quantile (from a
/// long fixed-seed run); the importance-sampled CI must cover it.
const C432_YIELD_AT_3SIGMA: f64 = 0.998;

fn shared_timer() -> &'static NsigmaTimer {
    static TIMER: OnceLock<NsigmaTimer> = OnceLock::new();
    TIMER.get_or_init(|| {
        let tech = Technology::synthetic_28nm();
        let lib = CellLibrary::standard();
        let mut cfg = TimerConfig::standard(SEED);
        cfg.char_samples = 300;
        cfg.wire.nets = 1;
        cfg.wire.samples = 200;
        NsigmaTimer::build(&tech, &lib, &cfg).expect("timer builds")
    })
}

fn session_for(design: Design) -> TimingSession<&'static NsigmaTimer> {
    TimingSession::new(shared_timer(), design, MergeRule::Pessimistic).expect("session")
}

fn c432_session() -> TimingSession<&'static NsigmaTimer> {
    let tech = Technology::synthetic_28nm();
    let lib = CellLibrary::standard();
    let netlist = map_to_cells(&Iscas85::C432.generate(), &lib).expect("mapping");
    session_for(Design::with_generated_parasitics(
        tech,
        lib,
        netlist,
        PARASITIC_SEED,
    ))
}

#[test]
fn c432_tail_quantile_regression() {
    let session = c432_session();

    // Fixed 2048-trial plain run (the tiny half-width disables early
    // stopping) pins the empirical sign-off quantile.
    let run = session
        .yield_run(&YieldConfig {
            ci_half_width: 1e-12,
            max_samples: 2048,
            chunk: 2048,
            seed: SEED,
            ..YieldConfig::default()
        })
        .expect("plain run");
    assert_eq!(run.report.samples, 2048);
    let tail_ps = run.report.mc_quantiles[SigmaLevel::PlusThree] * 1e12;
    assert!(
        (tail_ps - C432_TAIL_PS).abs() < 0.02 * C432_TAIL_PS,
        "c432 +3σ tail drifted: {tail_ps:.1} ps vs pinned {C432_TAIL_PS} ps"
    );

    // Importance sampling at the analytic +3σ target: converges to the
    // requested half-width and its interval covers the pinned yield.
    let is = session
        .yield_analysis(&YieldConfig {
            ci_half_width: 0.005,
            chunk: 64,
            max_samples: 8192,
            importance: Some(DEFAULT_IS_SHIFT),
            seed: SEED,
            ..YieldConfig::default()
        })
        .expect("importance run");
    assert!(is.converged, "IS must converge within the cap");
    assert!(is.estimate.half_width() <= 0.005 + 1e-12);
    assert!(
        (is.analytic_yield - 0.99865).abs() < 1e-3,
        "analytic yield at its own +3σ quantile must be the textbook level"
    );
    assert!(
        is.estimate.ci_lo - 0.005 <= C432_YIELD_AT_3SIGMA
            && C432_YIELD_AT_3SIGMA <= is.estimate.ci_hi + 0.005,
        "IS interval [{:.5}, {:.5}] must cover the pinned yield {C432_YIELD_AT_3SIGMA}",
        is.estimate.ci_lo,
        is.estimate.ci_hi
    );
}

#[test]
fn yield_is_independent_of_thread_schedule() {
    let session = c432_session();
    let cfg = |threads: usize| YieldConfig {
        ci_half_width: 1e-12,
        max_samples: 512,
        chunk: 128,
        threads,
        seed: SEED,
        importance: Some(DEFAULT_IS_SHIFT),
        ..YieldConfig::default()
    };
    let one = session.yield_analysis(&cfg(1)).expect("1 thread");
    let three = session.yield_analysis(&cfg(3)).expect("3 threads");
    assert_eq!(
        one.estimate.value.to_bits(),
        three.estimate.value.to_bits(),
        "trial-indexed RNG streams must make the estimate schedule-invariant"
    );
    assert_eq!(one.ess.to_bits(), three.ess.to_bits());
    assert_eq!(
        one.mc_quantiles.as_array().map(f64::to_bits),
        three.mc_quantiles.as_array().map(f64::to_bits)
    );
}

#[test]
fn invalid_configs_are_bad_requests() {
    let session = c432_session();
    for cfg in [
        YieldConfig {
            ci_half_width: -1.0,
            ..YieldConfig::default()
        },
        YieldConfig {
            importance: Some(99.0),
            ..YieldConfig::default()
        },
        YieldConfig {
            target_period: Some(f64::NAN),
            ..YieldConfig::default()
        },
    ] {
        let err = session.yield_analysis(&cfg).expect_err("must reject");
        assert_eq!(err.code(), "bad_request", "{err}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// On small adders, the importance-sampled yield and the plain
    /// Monte-Carlo yield at the same deadline agree to within their
    /// combined confidence intervals (plus a floor for the coarse
    /// sample counts a property test can afford).
    #[test]
    fn importance_sampling_agrees_with_plain_mc(width in 2usize..5, seed in 0u64..512) {
        let tech = Technology::synthetic_28nm();
        let lib = CellLibrary::standard();
        let netlist = map_to_cells(&ripple_adder(width), &lib).expect("mapping");
        let session = session_for(Design::with_generated_parasitics(
            tech, lib, netlist, PARASITIC_SEED,
        ));
        let base = YieldConfig {
            ci_half_width: 1e-12,
            max_samples: 1024,
            chunk: 1024,
            seed,
            ..YieldConfig::default()
        };
        let plain = session.yield_analysis(&base).expect("plain");
        let is = session.yield_analysis(&YieldConfig {
            importance: Some(2.0),
            ..base
        }).expect("importance");
        let tol = 2.0 * (plain.estimate.half_width() + is.estimate.half_width()) + 0.01;
        prop_assert!(
            (plain.estimate.value - is.estimate.value).abs() <= tol,
            "plain {} vs IS {} beyond tolerance {tol}",
            plain.estimate.value,
            is.estimate.value
        );
    }
}
