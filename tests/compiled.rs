//! Equivalence suite for the compiled timing graph: every query the
//! server or CLI can issue must produce bit-identical answers whether it
//! runs over the legacy string-keyed path or the interned/CSR compiled
//! path, and the sharded stage cache must account for every lookup under
//! concurrency.

use nsigma_cells::CellLibrary;
use nsigma_core::sta::TimerConfig;
use nsigma_core::{CompiledDesign, IncrementalTimer, MergeRule, NsigmaTimer, QueryScratch};
use nsigma_mc::design::Design;
use nsigma_netlist::generators::random_dag::Iscas85;
use nsigma_netlist::mapping::map_to_cells;
use nsigma_netlist::{k_longest_paths_by, GateId, Path, PathScratch};
use nsigma_process::Technology;
use nsigma_stats::quantile::QuantileSet;

const SEED: u64 = 11;
const PARASITIC_SEED: u64 = 7;

fn timer_config() -> TimerConfig {
    let mut cfg = TimerConfig::standard(SEED);
    cfg.char_samples = 300;
    cfg.wire.nets = 1;
    cfg.wire.samples = 200;
    cfg
}

fn build_timer(tech: &Technology, lib: &CellLibrary) -> NsigmaTimer {
    NsigmaTimer::build(tech, lib, &timer_config()).expect("timer build")
}

fn c432_design(tech: &Technology, lib: &CellLibrary) -> Design {
    let netlist = map_to_cells(&Iscas85::C432.generate(), lib).expect("mapping");
    Design::with_generated_parasitics(tech.clone(), lib.clone(), netlist, PARASITIC_SEED)
}

fn assert_bits_eq(a: &QuantileSet, b: &QuantileSet, what: &str) {
    for (i, (x, y)) in a.as_array().iter().zip(b.as_array()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: quantile {i} differs ({x} vs {y})"
        );
    }
}

/// The legacy worst-path ranking, inlined exactly as the pre-compiled
/// server and `report_worst_paths` computed it.
fn legacy_ranked_paths(design: &Design, k: usize) -> Vec<Path> {
    let weights: Vec<f64> = design
        .netlist
        .gate_ids()
        .map(|g| {
            let gate = design.netlist.gate(g);
            let cell = design.lib.cell(gate.cell);
            nsigma_cells::timing::nominal_arc(
                &design.tech,
                cell,
                20e-12,
                design.stage_effective_load(gate.output),
            )
            .delay
        })
        .collect();
    k_longest_paths_by(&design.netlist, |g| weights[g.index()], k)
}

#[test]
fn analyze_design_matches_legacy_bit_for_bit() {
    let tech = Technology::synthetic_28nm();
    let lib = CellLibrary::standard();
    let timer = build_timer(&tech, &lib);
    let design = c432_design(&tech, &lib);
    let compiled = CompiledDesign::compile(&timer, design.clone());

    let mut scratch = QueryScratch::new();
    for rule in [MergeRule::Pessimistic, MergeRule::Clark { rho: 0.3 }] {
        let legacy = timer.analyze_design_with(&design, rule);
        let fast = compiled.analyze_design_with(&timer, rule, &mut scratch);
        assert_bits_eq(&legacy, &fast, &format!("analyze_design {rule:?}"));
    }
    let legacy_early = timer.analyze_design_early(&design);
    let fast_early = compiled.analyze_design_early(&timer, &mut scratch);
    assert_bits_eq(&legacy_early, &fast_early, "analyze_design_early");
}

#[test]
fn analyze_path_matches_legacy_bit_for_bit() {
    let tech = Technology::synthetic_28nm();
    let lib = CellLibrary::standard();
    let timer = build_timer(&tech, &lib);
    let design = c432_design(&tech, &lib);
    let compiled = CompiledDesign::compile(&timer, design.clone());

    for path in legacy_ranked_paths(&design, 5) {
        let legacy = timer.analyze_path(&design, &path);
        let fast = compiled.analyze_path(&timer, &path);
        assert_bits_eq(&legacy.quantiles, &fast.quantiles, "analyze_path total");
        assert_eq!(legacy.stages.len(), fast.stages.len());
        for (ls, fs) in legacy.stages.iter().zip(&fast.stages) {
            assert_eq!(ls.gate, fs.gate);
            assert_eq!(ls.cell, fs.cell);
            assert_eq!(ls.input_slew.to_bits(), fs.input_slew.to_bits());
            assert_bits_eq(&ls.cell_quantiles, &fs.cell_quantiles, "stage cell");
            assert_bits_eq(&ls.wire_quantiles, &fs.wire_quantiles, "stage wire");
        }
    }
}

#[test]
fn worst_paths_ranking_matches_legacy() {
    let tech = Technology::synthetic_28nm();
    let lib = CellLibrary::standard();
    let timer = build_timer(&tech, &lib);
    let design = c432_design(&tech, &lib);
    let compiled = CompiledDesign::compile(&timer, design.clone());

    let legacy = legacy_ranked_paths(&design, 8);
    let mut scratch = PathScratch::new();
    let fast = compiled.ranked_paths(8, &mut scratch);
    assert_eq!(legacy.len(), fast.len());
    for (lp, fp) in legacy.iter().zip(&fast) {
        assert_eq!(lp.gates, fp.gates, "path gate sequence differs");
        assert_eq!(lp.nets, fp.nets, "path net sequence differs");
    }
    // Reusing the scratch must not perturb a second identical query.
    let again = compiled.ranked_paths(8, &mut scratch);
    for (fp, ap) in fast.iter().zip(&again) {
        assert_eq!(fp.gates, ap.gates);
    }
}

#[test]
fn incremental_resize_sequence_matches_legacy_full_reanalysis() {
    let tech = Technology::synthetic_28nm();
    let lib = CellLibrary::standard();
    let timer = build_timer(&tech, &lib);
    let design = c432_design(&tech, &lib);

    // Twin design mutated in lock-step through the legacy API.
    let mut twin = design.clone();
    let mut inc = IncrementalTimer::new(&timer, design, MergeRule::Pessimistic);
    assert_bits_eq(
        &timer.analyze_design_with(&twin, MergeRule::Pessimistic),
        &inc.worst_output(),
        "initial full analysis",
    );

    let total_gates = twin.netlist.num_gates();
    let picks = [3usize, 57, 111, 3, 200];
    let strengths = [8u32, 4, 8, 1, 2];
    for (step, (&gi, &strength)) in picks.iter().zip(&strengths).enumerate() {
        let gate = GateId::from_index(gi % total_gates);
        let kind = {
            let g = twin.netlist.gate(gate);
            twin.lib.cell(g.cell).kind()
        };
        let Some(cell) = twin.lib.find_kind(kind, strength) else {
            continue;
        };
        twin.replace_gate_cell(gate, cell);
        let incremental = inc.resize_gate(gate, strength);
        let legacy = timer.analyze_design_with(&twin, MergeRule::Pessimistic);
        assert_bits_eq(&legacy, &incremental, &format!("after resize {step}"));
        assert!(
            inc.last_recompute_count() <= total_gates,
            "recompute visited more gates than the design has"
        );
    }
}

#[test]
fn eight_threads_account_for_every_cache_lookup() {
    // A dedicated timer: its cache counters must explain exactly the
    // lookups this test issues, so no other test may share it.
    let tech = Technology::synthetic_28nm();
    let lib = CellLibrary::standard();
    let timer = build_timer(&tech, &lib);
    let design = c432_design(&tech, &lib);
    let compiled = CompiledDesign::compile(&timer, design.clone());
    let gates = design.netlist.num_gates() as u64;

    const THREADS: u64 = 8;
    const ITERS: u64 = 16;
    let reference = timer.analyze_design_with(&design, MergeRule::Pessimistic);
    let before = timer.cache_stats();
    assert_eq!(before.hits + before.misses, gates, "reference pass lookups");

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                scope.spawn(|| {
                    let mut scratch = QueryScratch::new();
                    for _ in 0..ITERS {
                        let q = compiled.analyze_design_with(
                            &timer,
                            MergeRule::Pessimistic,
                            &mut scratch,
                        );
                        assert_bits_eq(&reference, &q, "concurrent analyze_design");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker panicked");
        }
    });

    let stats = timer.cache_stats();
    let lookups = gates * (THREADS * ITERS + 1);
    assert_eq!(
        stats.hits + stats.misses,
        lookups,
        "every stage lookup must land in exactly one shard counter"
    );
    // Concurrent first-touch misses may duplicate a computation, but an
    // entry is only ever inserted on a miss.
    assert!(stats.entries <= stats.misses);
    assert!(stats.misses < lookups, "steady-state queries must hit");
    assert!(stats.hit_rate() > 0.9, "hit rate {:.3}", stats.hit_rate());
}
