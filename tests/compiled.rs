//! Differential-equivalence suite for the session query engine: every
//! query the server or CLI can issue must produce bit-identical answers
//! whether it runs through the production [`TimingSession`] (interned/CSR
//! compiled graph) or the legacy string-keyed oracle in
//! [`nsigma_core::reference`] — across generator-driven random circuits,
//! both merge rules, early mode, and ECO resize sequences — and the
//! sharded stage cache must account for every lookup under concurrency.

use nsigma_cells::CellLibrary;
use nsigma_core::sta::TimerConfig;
use nsigma_core::{reference, MergeRule, NsigmaTimer, TimingSession};
use nsigma_mc::design::Design;
use nsigma_netlist::generators::random_dag::{synthetic_circuit, Iscas85, SyntheticConfig};
use nsigma_netlist::logic::LogicCircuit;
use nsigma_netlist::mapping::map_to_cells;
use nsigma_netlist::{k_longest_paths_by, GateId, Path};
use nsigma_process::Technology;
use nsigma_stats::quantile::QuantileSet;

const SEED: u64 = 11;
const PARASITIC_SEED: u64 = 7;

fn timer_config() -> TimerConfig {
    let mut cfg = TimerConfig::standard(SEED);
    cfg.char_samples = 300;
    cfg.wire.nets = 1;
    cfg.wire.samples = 200;
    cfg
}

fn build_timer(tech: &Technology, lib: &CellLibrary) -> NsigmaTimer {
    NsigmaTimer::build(tech, lib, &timer_config()).expect("timer build")
}

fn design_of(tech: &Technology, lib: &CellLibrary, circuit: &LogicCircuit, seed: u64) -> Design {
    let netlist = map_to_cells(circuit, lib).expect("mapping");
    Design::with_generated_parasitics(tech.clone(), lib.clone(), netlist, seed)
}

fn c432_design(tech: &Technology, lib: &CellLibrary) -> Design {
    design_of(tech, lib, &Iscas85::C432.generate(), PARASITIC_SEED)
}

/// Random circuits for the differential sweep: several shapes and seeds
/// from the synthetic-DAG generator, plus a real ISCAS85 benchmark.
fn generated_designs(tech: &Technology, lib: &CellLibrary) -> Vec<Design> {
    let mut designs = vec![c432_design(tech, lib)];
    for (i, (gates, inputs, outputs, depth)) in [(80, 8, 6, 6), (120, 12, 8, 8), (200, 16, 10, 10)]
        .into_iter()
        .enumerate()
    {
        let seed = 100 + 37 * i as u64;
        let circuit = synthetic_circuit(&SyntheticConfig {
            name: format!("rand{i}"),
            gates,
            inputs,
            outputs,
            depth,
            seed,
        });
        designs.push(design_of(tech, lib, &circuit, seed ^ 0x5a));
    }
    designs
}

fn assert_bits_eq(a: &QuantileSet, b: &QuantileSet, what: &str) {
    for (i, (x, y)) in a.as_array().iter().zip(b.as_array()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: quantile {i} differs ({x} vs {y})"
        );
    }
}

/// The legacy worst-path ranking, inlined exactly as the pre-compiled
/// server and `report_worst_paths` computed it.
fn legacy_ranked_paths(design: &Design, k: usize) -> Vec<Path> {
    let weights: Vec<f64> = design
        .netlist
        .gate_ids()
        .map(|g| {
            let gate = design.netlist.gate(g);
            let cell = design.lib.cell(gate.cell);
            nsigma_cells::timing::nominal_arc(
                &design.tech,
                cell,
                20e-12,
                design.stage_effective_load(gate.output),
            )
            .delay
        })
        .collect();
    k_longest_paths_by(&design.netlist, |g| weights[g.index()], k)
}

#[test]
fn generated_designs_match_reference_bit_for_bit() {
    let tech = Technology::synthetic_28nm();
    let lib = CellLibrary::standard();
    let timer = build_timer(&tech, &lib);

    for design in generated_designs(&tech, &lib) {
        let name = design.netlist.name().to_string();
        let session = TimingSession::new(&timer, design.clone(), MergeRule::Pessimistic)
            .expect("session build");

        for rule in [MergeRule::Pessimistic, MergeRule::Clark { rho: 0.3 }] {
            let oracle = reference::analyze_design_with(&timer, &design, rule);
            let fast = session.analyze_design_with(rule);
            assert_bits_eq(&oracle, &fast, &format!("{name}: analyze_design {rule:?}"));
        }
        let oracle_early = reference::analyze_design_early(&timer, &design);
        let fast_early = session.analyze_design_early();
        assert_bits_eq(
            &oracle_early,
            &fast_early,
            &format!("{name}: analyze_design_early"),
        );
    }
}

#[test]
fn generated_paths_match_reference_bit_for_bit() {
    let tech = Technology::synthetic_28nm();
    let lib = CellLibrary::standard();
    let timer = build_timer(&tech, &lib);

    for design in generated_designs(&tech, &lib) {
        let name = design.netlist.name().to_string();
        let session = TimingSession::new(&timer, design.clone(), MergeRule::Pessimistic)
            .expect("session build");

        for path in legacy_ranked_paths(&design, 5) {
            let oracle = reference::analyze_path(&timer, &design, &path);
            let fast = session.analyze_path(&path).expect("in-design path");
            assert_bits_eq(
                &oracle.quantiles,
                &fast.quantiles,
                &format!("{name}: analyze_path total"),
            );
            assert_eq!(oracle.stages.len(), fast.stages.len());
            for (ls, fs) in oracle.stages.iter().zip(&fast.stages) {
                assert_eq!(ls.gate, fs.gate);
                assert_eq!(ls.cell, fs.cell);
                assert_eq!(ls.input_slew.to_bits(), fs.input_slew.to_bits());
                assert_bits_eq(&ls.cell_quantiles, &fs.cell_quantiles, "stage cell");
                assert_bits_eq(&ls.wire_quantiles, &fs.wire_quantiles, "stage wire");
            }
        }
    }
}

#[test]
fn worst_paths_ranking_matches_legacy() {
    let tech = Technology::synthetic_28nm();
    let lib = CellLibrary::standard();
    let timer = build_timer(&tech, &lib);
    let design = c432_design(&tech, &lib);
    let session =
        TimingSession::new(&timer, design.clone(), MergeRule::Pessimistic).expect("session build");

    let legacy = legacy_ranked_paths(&design, 8);
    let fast = session.worst_paths(8);
    assert_eq!(legacy.len(), fast.len());
    for (lp, fp) in legacy.iter().zip(&fast) {
        assert_eq!(lp.gates, fp.gates, "path gate sequence differs");
        assert_eq!(lp.nets, fp.nets, "path net sequence differs");
    }
    // Reusing the session's scratch pool must not perturb a second
    // identical query.
    let again = session.worst_paths(8);
    for (fp, ap) in fast.iter().zip(&again) {
        assert_eq!(fp.gates, ap.gates);
    }
}

#[test]
fn resize_sequences_match_reference_full_reanalysis() {
    let tech = Technology::synthetic_28nm();
    let lib = CellLibrary::standard();
    let timer = build_timer(&tech, &lib);

    for design in generated_designs(&tech, &lib) {
        let name = design.netlist.name().to_string();
        // Twin design mutated in lock-step and re-analyzed from scratch
        // through the string-keyed oracle.
        let mut twin = design.clone();
        let mut session =
            TimingSession::new(&timer, design, MergeRule::Pessimistic).expect("session build");
        assert_bits_eq(
            &reference::analyze_design_with(&timer, &twin, MergeRule::Pessimistic),
            &session.worst_output(),
            &format!("{name}: initial full analysis"),
        );

        let total_gates = twin.netlist.num_gates();
        let picks = [3usize, 57, 111, 3, 200];
        let strengths = [8u32, 4, 8, 1, 2];
        for (step, (&gi, &strength)) in picks.iter().zip(&strengths).enumerate() {
            let gate = GateId::from_index(gi % total_gates);
            let kind = {
                let g = twin.netlist.gate(gate);
                twin.lib.cell(g.cell).kind()
            };
            let Some(cell) = twin.lib.find_kind(kind, strength) else {
                continue;
            };
            twin.replace_gate_cell(gate, cell);
            let incremental = session.resize_gate(gate, strength).expect("resize");
            let oracle = reference::analyze_design_with(&timer, &twin, MergeRule::Pessimistic);
            assert_bits_eq(
                &oracle,
                &incremental,
                &format!("{name}: after resize {step}"),
            );
            assert!(
                session.last_recompute_count() <= total_gates,
                "recompute visited more gates than the design has"
            );
        }
    }
}

#[test]
fn eight_threads_account_for_every_cache_lookup() {
    // A dedicated timer: its cache counters must explain exactly the
    // lookups this test issues, so no other test may share it.
    let tech = Technology::synthetic_28nm();
    let lib = CellLibrary::standard();
    let timer = build_timer(&tech, &lib);
    let design = c432_design(&tech, &lib);
    let gates = design.netlist.num_gates() as u64;

    const THREADS: u64 = 8;
    const ITERS: u64 = 16;
    // Session build runs the initial full analysis: one lookup per gate.
    let session =
        TimingSession::new(&timer, design.clone(), MergeRule::Pessimistic).expect("session build");
    let reference_q = reference::analyze_design_with(&timer, &design, MergeRule::Pessimistic);
    let before = timer.cache_stats();
    assert_eq!(
        before.hits + before.misses,
        2 * gates,
        "session init + reference pass lookups"
    );

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                scope.spawn(|| {
                    for _ in 0..ITERS {
                        let q = session.analyze_design();
                        assert_bits_eq(&reference_q, &q, "concurrent analyze_design");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker panicked");
        }
    });

    let stats = timer.cache_stats();
    let lookups = gates * (THREADS * ITERS + 2);
    assert_eq!(
        stats.hits + stats.misses,
        lookups,
        "every stage lookup must land in exactly one shard counter"
    );
    // Concurrent first-touch misses may duplicate a computation, but an
    // entry is only ever inserted on a miss.
    assert!(stats.entries <= stats.misses);
    assert!(stats.misses < lookups, "steady-state queries must hit");
    assert!(stats.hit_rate() > 0.9, "hit rate {:.3}", stats.hit_rate());

    // The session's own counters attribute exactly its share: the init
    // pass plus every threaded query, and nothing from the oracle pass.
    let mine = session.cache_counters();
    assert_eq!(
        mine.hits + mine.misses,
        gates * (THREADS * ITERS + 1),
        "per-session counters must cover init + threaded queries only"
    );
    assert!(mine.hits > 0, "repeated identical queries must hit");
}
