//! End-to-end integration: the complete paper flow from netlist to verified
//! sigma-level path quantiles, exercised through the public facade API.

use nsigma::baselines::corner::CornerSta;
use nsigma::cells::cell::{Cell, CellKind};
use nsigma::cells::CellLibrary;
use nsigma::core::sta::{NsigmaTimer, TimerConfig};
use nsigma::core::{read_coefficients, write_coefficients, MergeRule, TimingSession};
use nsigma::mc::design::Design;
use nsigma::mc::path_sim::{simulate_path_mc, PathMcConfig};
use nsigma::netlist::generators::arith::{ripple_adder, ripple_subtractor};
use nsigma::netlist::mapping::map_to_cells;
use nsigma::process::Technology;
use nsigma::stats::quantile::SigmaLevel;

fn small_lib() -> CellLibrary {
    let mut lib = CellLibrary::new();
    for kind in [
        CellKind::Inv,
        CellKind::Buf,
        CellKind::Nand2,
        CellKind::Xor2,
    ] {
        for s in [1, 2, 4, 8] {
            lib.add(Cell::new(kind, s));
        }
    }
    lib
}

fn quick_timer(tech: &Technology, lib: &CellLibrary, seed: u64) -> NsigmaTimer {
    let mut cfg = TimerConfig::standard(seed);
    cfg.char_samples = 1500;
    cfg.wire.nets = 2;
    cfg.wire.samples = 800;
    NsigmaTimer::build(tech, lib, &cfg).expect("timer builds")
}

#[test]
fn full_flow_model_tracks_golden_on_both_tails() {
    let tech = Technology::synthetic_28nm();
    let lib = small_lib();
    let netlist = map_to_cells(&ripple_adder(8), &lib).expect("maps");
    let design = Design::with_generated_parasitics(tech.clone(), lib.clone(), netlist, 11);
    let timer = quick_timer(&tech, &lib, 21);

    let session =
        TimingSession::new(&timer, design.clone(), MergeRule::Pessimistic).expect("session");
    let (path, model) = session.critical_path().expect("path");
    let golden = simulate_path_mc(
        &design,
        &path,
        &PathMcConfig {
            samples: 3000,
            seed: 2,
            input_slew: 10e-12,
        },
    );

    for lvl in [
        SigmaLevel::MinusThree,
        SigmaLevel::Zero,
        SigmaLevel::PlusThree,
    ] {
        let rel = ((model.quantiles[lvl] - golden.quantiles[lvl]) / golden.quantiles[lvl]).abs();
        assert!(
            rel < 0.18,
            "{lvl}: model {:.1} ps vs golden {:.1} ps",
            model.quantiles[lvl] * 1e12,
            golden.quantiles[lvl] * 1e12
        );
    }
}

#[test]
fn model_beats_the_corner_flow_at_plus_three_sigma() {
    let tech = Technology::synthetic_28nm();
    let lib = small_lib();
    let netlist = map_to_cells(&ripple_subtractor(8), &lib).expect("maps");
    let design = Design::with_generated_parasitics(tech.clone(), lib.clone(), netlist, 5);
    let timer = quick_timer(&tech, &lib, 31);

    let session =
        TimingSession::new(&timer, design.clone(), MergeRule::Pessimistic).expect("session");
    let (path, model) = session.critical_path().expect("path");
    let corner = CornerSta::signoff().analyze_path(&design, &path);
    let golden = simulate_path_mc(
        &design,
        &path,
        &PathMcConfig {
            samples: 2500,
            seed: 3,
            input_slew: 10e-12,
        },
    );

    let g3 = golden.quantiles[SigmaLevel::PlusThree];
    let model_err = ((model.quantiles[SigmaLevel::PlusThree] - g3) / g3).abs();
    let corner_err = ((corner.late - g3) / g3).abs();
    assert!(
        model_err < corner_err,
        "Table III ordering: ours {:.1}% must beat PT {:.1}%",
        model_err * 100.0,
        corner_err * 100.0
    );
}

#[test]
fn coefficients_file_round_trips_through_analysis() {
    let tech = Technology::synthetic_28nm();
    let lib = small_lib();
    let netlist = map_to_cells(&ripple_adder(6), &lib).expect("maps");
    let design = Design::with_generated_parasitics(tech.clone(), lib.clone(), netlist, 9);
    let timer = quick_timer(&tech, &lib, 41);

    let text = write_coefficients(&timer);
    let restored = read_coefficients(&tech, &text).expect("parse back");

    let session_a =
        TimingSession::new(&timer, design.clone(), MergeRule::Pessimistic).expect("session");
    let session_b = TimingSession::new(&restored, design, MergeRule::Pessimistic).expect("session");
    let (path, a) = session_a.critical_path().expect("path");
    let b = session_b.analyze_path(&path).expect("path timing");
    for lvl in SigmaLevel::ALL {
        let rel = ((a.quantiles[lvl] - b.quantiles[lvl]) / a.quantiles[lvl]).abs();
        assert!(rel < 1e-9, "{lvl} drifted through serialization: {rel}");
    }
}

#[test]
fn design_level_analysis_is_pessimistic_but_ordered() {
    let tech = Technology::synthetic_28nm();
    let lib = small_lib();
    let netlist = map_to_cells(&ripple_adder(8), &lib).expect("maps");
    let design = Design::with_generated_parasitics(tech.clone(), lib.clone(), netlist, 13);
    let timer = quick_timer(&tech, &lib, 51);

    let session = TimingSession::new(&timer, design, MergeRule::Pessimistic).expect("session");
    let (_, path_timing) = session.critical_path().expect("path");
    let worst = session.analyze_design();
    assert!(worst.is_monotone());
    assert!(
        worst[SigmaLevel::PlusThree] >= path_timing.quantiles[SigmaLevel::PlusThree] * 0.999,
        "block-based max-merge bounds the single-path estimate"
    );
}
