//! Integration test of the timing-query daemon: a real TCP server on an
//! ephemeral port, concurrent clients, and bit-for-bit parity between
//! remote answers and an in-process timer built from the same
//! configuration.

use nsigma_cells::CellLibrary;
use nsigma_core::sta::TimerConfig;
use nsigma_core::{MergeRule, NsigmaTimer, TimingSession, YieldCurve};
use nsigma_mc::design::Design;
use nsigma_netlist::generators::random_dag::Iscas85;
use nsigma_netlist::mapping::map_to_cells;
use nsigma_netlist::{k_longest_paths_by, Path};
use nsigma_process::Technology;
use nsigma_server::{Client, Server, ServerConfig, Value};
use nsigma_stats::quantile::{QuantileSet, SigmaLevel};

const SEED: u64 = 11;
const PARASITIC_SEED: u64 = 7;

/// The shared timer configuration: small enough for a test, and built
/// identically on both sides so answers must agree to the last bit.
fn timer_config() -> TimerConfig {
    let mut cfg = TimerConfig::standard(SEED);
    cfg.char_samples = 300;
    cfg.wire.nets = 1;
    cfg.wire.samples = 200;
    cfg
}

/// The same design the server generates for
/// `{"iscas":"c432","seed":PARASITIC_SEED}`.
fn local_design(tech: &Technology, lib: &CellLibrary) -> Design {
    let netlist = map_to_cells(&Iscas85::C432.generate(), lib).expect("mapping");
    Design::with_generated_parasitics(tech.clone(), lib.clone(), netlist, PARASITIC_SEED)
}

/// The server's worst-path ranking (same as `report_worst_paths`).
fn ranked_paths(design: &Design, k: usize) -> Vec<Path> {
    let weights: Vec<f64> = design
        .netlist
        .gate_ids()
        .map(|g| {
            let gate = design.netlist.gate(g);
            let cell = design.lib.cell(gate.cell);
            nsigma_cells::timing::nominal_arc(
                &design.tech,
                cell,
                20e-12,
                design.stage_effective_load(gate.output),
            )
            .delay
        })
        .collect();
    k_longest_paths_by(&design.netlist, |g| weights[g.index()], k)
}

fn quantile_array(v: &Value) -> [f64; 7] {
    let arr = v.as_arr().expect("quantiles must be an array");
    assert_eq!(arr.len(), 7);
    let mut out = [0.0; 7];
    for (o, v) in out.iter_mut().zip(arr) {
        *o = v.as_f64().expect("quantile must be a number");
    }
    out
}

#[test]
fn concurrent_clients_get_bit_exact_answers() {
    // One timer build shared by the server and the local reference.
    let tech = Technology::synthetic_28nm();
    let lib = CellLibrary::standard();
    let local_timer = NsigmaTimer::build(&tech, &lib, &timer_config()).expect("local timer");
    let reference = local_design(&tech, &lib);
    let local_session = TimingSession::new(&local_timer, reference.clone(), MergeRule::Pessimistic)
        .expect("local session");
    let ref_paths = ranked_paths(&reference, 2);
    let ref_quantiles: Vec<[f64; 7]> = ref_paths
        .iter()
        .map(|p| {
            local_session
                .analyze_path(p)
                .expect("local path")
                .quantiles
                .as_array()
        })
        .collect();

    // Per-client ECO reference: each client registers its own copy of the
    // design and resizes one distinct gate to strength 8.
    let n_clients = 4;
    let eco_gates: Vec<String> = (0..n_clients)
        .map(|i| {
            let gid = reference.netlist.gate_ids().nth(i * 7).expect("gate");
            reference.netlist.gate(gid).name.clone()
        })
        .collect();
    let eco_reference: Vec<[f64; 7]> = eco_gates
        .iter()
        .map(|name| {
            let mut session =
                TimingSession::new(&local_timer, reference.clone(), MergeRule::Pessimistic)
                    .expect("eco session");
            let gid = session.find_gate(name).expect("gate by name");
            session.resize_gate(gid, 8).expect("resize").as_array()
        })
        .collect();

    let handle = Server::start(ServerConfig {
        threads: 4,
        timer: timer_config(),
        ..ServerConfig::default()
    })
    .expect("server start");
    let port = handle.port();

    std::thread::scope(|scope| {
        for (i, gate) in eco_gates.iter().enumerate() {
            let ref_quantiles = &ref_quantiles;
            let eco_reference = &eco_reference;
            scope.spawn(move || {
                let mut client = Client::connect(("127.0.0.1", port)).expect("connect");
                let name = format!("c432-{i}");
                let reg = client
                    .request_ok(&format!(
                        r#"{{"cmd":"register_design","name":"{name}","iscas":"c432","seed":{PARASITIC_SEED}}}"#
                    ))
                    .expect("register");
                assert!(reg.get("gates").unwrap().as_u64().unwrap() > 0);

                // worst_paths must match the local analysis bit for bit.
                let wp = client
                    .request_ok(&format!(r#"{{"cmd":"worst_paths","design":"{name}","k":2}}"#))
                    .expect("worst_paths");
                let paths = wp.get("paths").unwrap().as_arr().unwrap();
                assert_eq!(paths.len(), ref_quantiles.len());
                for (remote, local) in paths.iter().zip(ref_quantiles.iter()) {
                    let remote_q = quantile_array(remote.get("quantiles").unwrap());
                    for (r, l) in remote_q.iter().zip(local) {
                        assert_eq!(r.to_bits(), l.to_bits(), "worst_paths drifted");
                    }
                }

                // eco_resize through the incremental timer, same parity.
                let eco = client
                    .request_ok(&format!(
                        r#"{{"cmd":"eco_resize","design":"{name}","gate":"{gate}","strength":8}}"#
                    ))
                    .expect("eco_resize");
                let remote_q = quantile_array(eco.get("worst_quantiles").unwrap());
                for (r, l) in remote_q.iter().zip(&eco_reference[i]) {
                    assert_eq!(r.to_bits(), l.to_bits(), "eco_resize drifted");
                }
            });
        }
    });

    // Fractional and integer sigma through the quantile endpoint.
    let mut client = Client::connect(("127.0.0.1", port)).expect("connect");
    let q3 = client
        .request_ok(r#"{"cmd":"quantile","design":"c432-0","path":0,"sigma":3}"#)
        .expect("quantile sigma=3");
    assert_eq!(
        q3.get("delay").unwrap().as_f64().unwrap().to_bits(),
        ref_quantiles[0][6].to_bits(),
        "integer sigma must be the exact Table I quantile"
    );
    let q45 = client
        .request_ok(r#"{"cmd":"quantile","design":"c432-0","path":0,"sigma":4.5}"#)
        .expect("quantile sigma=4.5");
    let q = QuantileSet::from_values(ref_quantiles[0]);
    let local_45 = q[SigmaLevel::Zero] + YieldCurve::new(&q).margin(0.0, 4.5);
    assert_eq!(
        q45.get("delay").unwrap().as_f64().unwrap().to_bits(),
        local_45.to_bits(),
        "fractional sigma must match the local yield curve"
    );

    // Errors carry typed codes.
    let missing = client
        .request(r#"{"cmd":"worst_paths","design":"ghost"}"#)
        .expect("response");
    assert_eq!(missing.get("ok").unwrap().as_bool(), Some(false));
    assert_eq!(missing.get("code").unwrap().as_str(), Some("not_found"));
    let bad = client.request("{broken").expect("response");
    assert_eq!(bad.get("code").unwrap().as_str(), Some("bad_request"));

    // Monte-Carlo yield through the yield engine: response schema, seed
    // determinism, and a typed rejection for a bad configuration.
    let yield_req = r#"{"cmd":"yield_design","design":"c432-0","ci":0.02,"samples":512,"seed":5,"importance":true}"#;
    let y = client.request_ok(yield_req).expect("yield_design");
    let yield_v = y.get("yield").unwrap().as_f64().unwrap();
    let lo = y.get("ci_lo").unwrap().as_f64().unwrap();
    let hi = y.get("ci_hi").unwrap().as_f64().unwrap();
    assert!(
        lo <= yield_v && yield_v <= hi,
        "CI must bracket the estimate"
    );
    assert!(y.get("ci_half_width").unwrap().as_f64().unwrap() > 0.0);
    assert!(y.get("target_period").unwrap().as_f64().unwrap() > 0.0);
    assert!(y.get("samples").unwrap().as_u64().unwrap() >= 1);
    assert!(y.get("ess").unwrap().as_f64().unwrap() > 0.0);
    assert_eq!(y.get("importance").unwrap().as_bool(), Some(true));
    assert_eq!(y.get("curve").unwrap().as_arr().unwrap().len(), 7);
    quantile_array(y.get("analytic_quantiles").unwrap());
    quantile_array(y.get("mc_quantiles").unwrap());
    let y2 = client.request_ok(yield_req).expect("yield repeat");
    assert_eq!(
        y2.get("yield").unwrap().as_f64().unwrap().to_bits(),
        yield_v.to_bits(),
        "yield must be deterministic in the seed"
    );
    let bad_yield = client
        .request(r#"{"cmd":"yield_design","design":"c432-0","samples":0}"#)
        .expect("response");
    assert_eq!(bad_yield.get("ok").unwrap().as_bool(), Some(false));
    assert_eq!(bad_yield.get("code").unwrap().as_str(), Some("bad_request"));

    // Observability: the shared stage cache has hits (four identical
    // designs analyzed the same cells), and the latency counters are sane.
    let stats = client.request_ok(r#"{"cmd":"stats"}"#).expect("stats");
    let cache = stats.get("stage_cache").unwrap();
    assert!(
        cache.get("hits").unwrap().as_u64().unwrap() > 0,
        "stage cache must be hit across designs"
    );
    assert_eq!(stats.get("designs").unwrap().as_u64(), Some(4));
    // The yield engine's cumulative trial counter reflects the two runs.
    let drawn = stats.get("yield_samples_drawn").unwrap().as_u64().unwrap();
    assert!(
        drawn >= 2 * y.get("samples").unwrap().as_u64().unwrap(),
        "yield_samples_drawn = {drawn}"
    );
    // Per-design cache attribution: every registered design ran its
    // initial analysis through its session, so each entry reports lookups.
    let design_cache = stats.get("design_cache").unwrap();
    for i in 0..n_clients {
        let entry = design_cache.get(&format!("c432-{i}")).unwrap();
        let hits = entry.get("hits").unwrap().as_u64().unwrap();
        let misses = entry.get("misses").unwrap().as_u64().unwrap();
        assert!(
            hits + misses > 0,
            "design c432-{i} must report cache traffic"
        );
        let rate = entry.get("hit_rate").unwrap().as_f64().unwrap();
        assert!((0.0..=1.0).contains(&rate));
    }
    let metrics = stats.get("metrics").unwrap();
    assert_eq!(metrics.get("bad_requests").unwrap().as_u64(), Some(1));
    let wp = metrics
        .get("endpoints")
        .unwrap()
        .get("worst_paths")
        .unwrap();
    assert_eq!(wp.get("ok").unwrap().as_u64(), Some(4));
    assert_eq!(
        wp.get("requests").unwrap().as_u64(),
        Some(5),
        "requests must equal ok + errors, matching the bench report field"
    );
    let p50 = wp.get("p50_us").unwrap().as_f64().unwrap();
    let p99 = wp.get("p99_us").unwrap().as_f64().unwrap();
    assert!(
        p50 >= 0.0 && p99 >= p50,
        "latency histogram must be ordered"
    );
    assert!(wp.get("mean_us").unwrap().as_f64().unwrap() > 0.0);
    assert_eq!(wp.get("errors").unwrap().as_u64(), Some(1)); // the ghost lookup
    let yd = metrics
        .get("endpoints")
        .unwrap()
        .get("yield_design")
        .unwrap();
    assert_eq!(yd.get("ok").unwrap().as_u64(), Some(2));
    assert_eq!(yd.get("errors").unwrap().as_u64(), Some(1)); // samples: 0

    // Clean shutdown via the protocol: the server drains and the accept
    // loop exits, so wait() returns.
    let bye = client
        .request_ok(r#"{"cmd":"shutdown"}"#)
        .expect("shutdown");
    assert_eq!(bye.get("stopping").unwrap().as_bool(), Some(true));
    handle.wait();
}
