//! Integration tests of the lint pass: generated circuits must be free of
//! error-severity findings, every documented diagnostic code must have a
//! trigger, and the server's `register_design` gate must reject a looped
//! design with a typed `lint_failed` error unless the client opts out.

use nsigma::cells::CellLibrary;
use nsigma::core::sta::TimerConfig;
use nsigma::lint::{
    code_info, lint_bench_text, lint_netlist, lint_parasitics, lint_spef_text, LintReport,
    Severity, CODES,
};
use nsigma::mc::design::Design;
use nsigma::netlist::generators::arith::{ripple_adder, ripple_subtractor};
use nsigma::netlist::generators::arith_fast::{cla_adder, wallace_multiplier};
use nsigma::netlist::generators::random_dag::{synthetic_circuit, Iscas85, SyntheticConfig};
use nsigma::netlist::logic::LogicCircuit;
use nsigma::netlist::mapping::map_to_cells;
use nsigma::process::Technology;
use nsigma_server::{Client, Server, ServerConfig};
use proptest::prelude::*;

/// Structural + parasitic lint of a generated circuit; returns the report.
fn lint_generated(circuit: &LogicCircuit, seed: u64) -> LintReport {
    let lib = CellLibrary::standard();
    let netlist = map_to_cells(circuit, &lib).expect("generated circuits map");
    let design =
        Design::with_generated_parasitics(Technology::synthetic_28nm(), lib, netlist, seed);
    let mut report = lint_netlist(&design.netlist, &design.lib);
    report.merge(lint_parasitics(&design));
    report
}

#[test]
fn generated_benchmarks_are_lint_clean() {
    for bench in Iscas85::ALL {
        let r = lint_generated(&bench.generate(), 3);
        assert!(r.is_clean(), "{}: {}", bench.name(), r.render_human());
    }
    for (name, circuit) in [
        ("ripple_adder", ripple_adder(8)),
        ("ripple_subtractor", ripple_subtractor(8)),
        ("cla_adder", cla_adder(8)),
        ("wallace_multiplier", wallace_multiplier(4)),
    ] {
        let r = lint_generated(&circuit, 5);
        assert!(r.is_clean(), "{name}: {}", r.render_human());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random synthetic DAGs never carry error-severity findings: the
    /// generator guarantees acyclicity, single drivers and full mapping.
    #[test]
    fn synthetic_circuits_are_lint_clean(
        gates in 10usize..80,
        inputs in 2usize..8,
        outputs in 1usize..6,
        depth in 3usize..9,
        seed in 0u64..1000,
    ) {
        let circuit = synthetic_circuit(&SyntheticConfig {
            name: "prop".into(),
            gates,
            inputs,
            outputs,
            depth,
            seed,
        });
        let r = lint_generated(&circuit, seed);
        prop_assert!(r.is_clean(), "{}", r.render_human());
    }
}

/// Every code documented in the reference table is reachable: the codes
/// asserted by the unit and integration tests, checked against `CODES` so
/// a new code cannot be added without a triggering test.
#[test]
fn every_documented_code_has_a_trigger() {
    // Codes triggered right here through the text front ends.
    let mut seen: Vec<&str> = Vec::new();

    // NL001: combinational loop.
    let (_, r) = lint_bench_text(
        "t.bench",
        "INPUT(a)\nOUTPUT(y)\nt = NAND(a, y)\ny = NOT(t)\n",
    );
    assert_eq!(r.error_codes(), vec!["NL001"]);
    seen.push("NL001");

    // NL002: undefined signal.
    let (_, r) = lint_bench_text("t.bench", "INPUT(a)\nOUTPUT(y)\ny = NAND(a, ghost)\n");
    assert_eq!(r.error_codes(), vec!["NL002"]);
    seen.push("NL002");

    // NL003: two drivers for one signal.
    let (_, r) = lint_bench_text("t.bench", "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\ny = BUF(a)\n");
    assert!(r.error_codes().contains(&"NL003"));
    seen.push("NL003");

    // NL004: a gate output nothing reads.
    let (_, r) = lint_bench_text(
        "t.bench",
        "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\ndead = BUF(a)\n",
    );
    assert!(r.diagnostics.iter().any(|d| d.code == "NL004"));
    assert!(r.is_clean());
    seen.push("NL004");

    // NL006: unsupported gate keyword.
    let (_, r) = lint_bench_text("t.bench", "INPUT(a)\nOUTPUT(y)\ny = DFF(a)\n");
    assert_eq!(r.error_codes(), vec!["NL006"]);
    seen.push("NL006");

    // NL007: malformed line.
    let (_, r) = lint_bench_text("t.bench", "INPUT(a)\nOUTPUT(y)\nwhat even\ny = NOT(a)\n");
    assert_eq!(r.error_codes(), vec!["NL007"]);
    seen.push("NL007");

    // RC001: negative resistance in SPEF.
    let (_, r) = lint_spef_text(
        "t.spef",
        "*SPEF-LITE 1\n*NET x\n*N 0 -1 0 1e-16\n*N 1 0 -5 1e-16\n*END\n",
    );
    assert_eq!(r.error_codes(), vec!["RC001"]);
    seen.push("RC001");

    // RC002: sink on an undeclared node.
    let (_, r) = lint_spef_text(
        "t.spef",
        "*SPEF-LITE 1\n*NET x\n*N 0 -1 0 1e-16\n*S 9\n*END\n",
    );
    assert_eq!(r.error_codes(), vec!["RC002"]);
    seen.push("RC002");

    // RC004: duplicate net definition.
    let (_, r) = lint_spef_text(
        "t.spef",
        "*SPEF-LITE 1\n*NET x\n*N 0 -1 0 1e-16\n*END\n*NET x\n*N 0 -1 0 1e-16\n*END\n",
    );
    assert_eq!(r.error_codes(), vec!["RC004"]);
    seen.push("RC004");

    // RC005: malformed record.
    let (_, r) = lint_spef_text("t.spef", "*SPEF-LITE 1\n*NET x\nnonsense\n*END\n");
    assert_eq!(r.error_codes(), vec!["RC005"]);
    seen.push("RC005");

    // The remaining codes need a built design or timer; their mutation
    // tests live next to the passes (crates/lint/src/{netlist,
    // interconnect,coverage,model}.rs). Named here so this test fails
    // when a code is documented without any trigger.
    let unit_tested = [
        "NL005", "RC003", "LB001", "LB002", "CF001", "CF002", "CF003",
    ];
    seen.extend(unit_tested);

    let mut documented: Vec<&str> = CODES.iter().map(|c| c.code).collect();
    seen.sort_unstable();
    documented.sort_unstable();
    assert_eq!(seen, documented);
    for code in seen {
        assert!(code_info(code).is_some(), "{code} missing from CODES");
    }
}

#[test]
fn reference_table_severities_match_emitters() {
    assert_eq!(code_info("NL004").unwrap().severity, Severity::Warn);
    assert_eq!(code_info("LB002").unwrap().severity, Severity::Warn);
    assert_eq!(code_info("CF003").unwrap().severity, Severity::Warn);
    for code in ["NL001", "RC001", "LB001", "CF001"] {
        assert_eq!(code_info(code).unwrap().severity, Severity::Error);
    }
}

/// A fast-to-build server for the gate tests.
fn quick_server() -> nsigma_server::ServerHandle {
    let mut timer = TimerConfig::standard(11);
    timer.char_samples = 300;
    timer.wire.nets = 1;
    timer.wire.samples = 200;
    Server::start(ServerConfig {
        threads: 1,
        timer,
        ..ServerConfig::default()
    })
    .expect("server start")
}

const LOOP_BENCH: &str = "INPUT(a)\\nOUTPUT(y)\\nt = NAND(a, y)\\ny = NOT(t)\\n";
const CLEAN_BENCH: &str = "INPUT(a)\\nINPUT(b)\\nOUTPUT(y)\\nt = NAND(a, b)\\ny = NOT(t)\\n";

#[test]
fn server_gate_rejects_loops_and_honors_opt_out() {
    let handle = quick_server();
    let mut client = Client::connect(("127.0.0.1", handle.port())).expect("connect");

    // A clean client-supplied bench registers and is queryable.
    let ok = client
        .request_ok(&format!(
            r#"{{"cmd":"register_design","name":"clean","bench":"{CLEAN_BENCH}"}}"#
        ))
        .expect("clean bench registers");
    assert_eq!(ok.get("gates").unwrap().as_u64(), Some(2));

    // The looped bench is rejected by the lint gate with the typed error
    // naming the offending code.
    let rejected = client
        .request(&format!(
            r#"{{"cmd":"register_design","name":"looped","bench":"{LOOP_BENCH}"}}"#
        ))
        .expect("response parses");
    assert_eq!(
        rejected.get("code").and_then(|v| v.as_str()),
        Some("lint_failed")
    );
    assert!(
        rejected
            .get("error")
            .and_then(|v| v.as_str())
            .unwrap()
            .contains("NL001"),
        "{rejected:?}"
    );

    // Opting out restores the old behavior: the loop then fails deeper in
    // technology mapping, not in lint.
    let old = client
        .request(&format!(
            r#"{{"cmd":"register_design","name":"looped","bench":"{LOOP_BENCH}","lint":false}}"#
        ))
        .expect("response parses");
    assert_eq!(old.get("code").and_then(|v| v.as_str()), Some("internal"));

    // The lint_design endpoint reports on a registered design.
    let lint = client
        .request_ok(r#"{"cmd":"lint_design","design":"clean"}"#)
        .expect("lint_design");
    assert_eq!(lint.get("errors").unwrap().as_u64(), Some(0));
    assert!(lint.get("diagnostics").unwrap().as_arr().is_some());

    handle.shutdown();
}
