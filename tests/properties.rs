//! Property-based tests (proptest) on the core invariants of the workspace:
//! quantile monotonicity, Elmore additivity, moment stability, parser
//! round-trips and model scale-invariance under randomized inputs.

use nsigma::cells::cell::{Cell, CellKind};
use nsigma::cells::timing::{evaluate_arc, nominal_arc};
use nsigma::interconnect::elmore::{elmore_all, moments_all};
use nsigma::interconnect::metrics::{d2m_delay, two_pole_delay};
use nsigma::interconnect::rctree::RcTree;
use nsigma::interconnect::spef::{parse as parse_spef, write as write_spef, SpefNet};
use nsigma::process::Technology;
use nsigma::stats::moments::{Moments, RunningMoments};
use nsigma::stats::quantile::{quantile_sorted, QuantileSet, SigmaLevel};
use nsigma::stats::special::{norm_cdf, norm_quantile};
use proptest::prelude::*;

/// Strategy: a random RC tree of 2–20 nodes with positive elements.
fn rc_tree_strategy() -> impl Strategy<Value = RcTree> {
    (
        proptest::collection::vec((0usize..100, 10.0f64..2000.0, 0.01e-15..1.0e-15), 1..20),
        0.001e-15..0.2e-15,
    )
        .prop_map(|(nodes, root_cap)| {
            let mut tree = RcTree::new(root_cap);
            let mut ids = vec![RcTree::root()];
            for (parent_pick, res, cap) in nodes {
                let parent = ids[parent_pick % ids.len()];
                ids.push(tree.add_node(parent, res, cap));
            }
            let last = *ids.last().expect("at least the root");
            if last != RcTree::root() {
                tree.mark_sink(last);
            } else {
                let extra = tree.add_node(RcTree::root(), 100.0, 0.1e-15);
                tree.mark_sink(extra);
            }
            tree
        })
}

proptest! {
    #[test]
    fn norm_quantile_is_inverse_of_cdf(p in 1e-6f64..0.999999) {
        let z = norm_quantile(p);
        prop_assert!((norm_cdf(z) - p).abs() < 1e-8);
    }

    #[test]
    fn norm_quantile_is_monotone(a in 1e-6f64..0.999998, d in 1e-6f64..0.5) {
        let b = (a + d).min(0.999999);
        prop_assert!(norm_quantile(b) >= norm_quantile(a));
    }

    #[test]
    fn empirical_quantiles_are_monotone_and_bounded(
        mut xs in proptest::collection::vec(-1e3f64..1e3, 2..200),
        p1 in 0.0f64..1.0,
        p2 in 0.0f64..1.0,
    ) {
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let (lo, hi) = (p1.min(p2), p1.max(p2));
        let q_lo = quantile_sorted(&xs, lo);
        let q_hi = quantile_sorted(&xs, hi);
        prop_assert!(q_lo <= q_hi);
        prop_assert!(q_lo >= xs[0] && q_hi <= xs[xs.len() - 1]);
    }

    #[test]
    fn running_moments_match_batch(xs in proptest::collection::vec(-1e2f64..1e2, 4..200)) {
        let batch = Moments::from_samples(&xs);
        let online: RunningMoments = xs.iter().copied().collect();
        let m = online.moments();
        prop_assert!((batch.mean - m.mean).abs() <= 1e-9 * (1.0 + batch.mean.abs()));
        prop_assert!((batch.std - m.std).abs() <= 1e-9 * (1.0 + batch.std));
    }

    #[test]
    fn running_moments_merge_is_associative(
        xs in proptest::collection::vec(-50.0f64..50.0, 6..120),
        split in 1usize..5,
    ) {
        let k = (xs.len() / split.max(1)).max(1);
        let mut merged = RunningMoments::new();
        for chunk in xs.chunks(k) {
            let part: RunningMoments = chunk.iter().copied().collect();
            merged.merge(&part);
        }
        let whole: RunningMoments = xs.iter().copied().collect();
        let a = merged.moments();
        let b = whole.moments();
        prop_assert!((a.mean - b.mean).abs() < 1e-8 * (1.0 + b.mean.abs()));
        prop_assert!((a.kurtosis - b.kurtosis).abs() < 1e-6 * (1.0 + b.kurtosis.abs()));
    }

    #[test]
    fn quantile_set_from_samples_is_monotone(
        xs in proptest::collection::vec(0.0f64..1e3, 8..400)
    ) {
        let q = QuantileSet::from_samples(&xs);
        prop_assert!(q.is_monotone());
    }

    #[test]
    fn elmore_is_positive_and_additive_in_caps(tree in rc_tree_strategy()) {
        let sink = tree.sinks()[0];
        let base = elmore_all(&tree)[sink.index()];
        prop_assert!(base > 0.0);

        // Adding cap at the sink strictly increases its Elmore delay.
        let mut bigger = tree.clone();
        bigger.add_cap(sink, 1e-15);
        let grown = elmore_all(&bigger)[sink.index()];
        prop_assert!(grown > base);

        // Scaling all R and C by k scales Elmore by k².
        let scaled = tree.scaled_with(|_, r| r * 2.0, |_, c| c * 2.0);
        let quad = elmore_all(&scaled)[sink.index()];
        prop_assert!((quad / base - 4.0).abs() < 1e-6);
    }

    #[test]
    fn delay_metrics_are_ordered(tree in rc_tree_strategy()) {
        let sink = tree.sinks()[0];
        let (m1s, m2s) = moments_all(&tree);
        let m1 = m1s[sink.index()];
        let m2 = m2s[sink.index()];
        prop_assert!(m1 > 0.0 && m2 > 0.0);
        let d2m = d2m_delay(m1, m2);
        let tp = two_pole_delay(m1, m2);
        let ln2m1 = core::f64::consts::LN_2 * m1;
        // The two-pole estimate lives between the optimistic single-pole
        // value and the pessimistic Elmore bound; D2M shares the upper
        // bound but is known to undershoot ln2·m1 at sinks shadowed by
        // heavy side branches (m2 > m1²).
        prop_assert!(d2m > 0.0 && d2m <= m1 * 1.001);
        prop_assert!(tp >= ln2m1 * 0.999 && tp <= m1 * 1.001);
    }

    #[test]
    fn spef_round_trip_is_lossless(tree in rc_tree_strategy()) {
        let nets = vec![SpefNet { name: "n".into(), tree }];
        let text = write_spef(&nets);
        let parsed = parse_spef(&text).unwrap();
        prop_assert_eq!(parsed, nets);
    }

    #[test]
    fn cell_delay_is_monotone_in_conditions(
        slew in 1e-12f64..300e-12,
        load in 0.05e-15f64..6e-15,
        extra_slew in 1e-12f64..100e-12,
        extra_load in 0.05e-15f64..2e-15,
    ) {
        let tech = Technology::synthetic_28nm();
        let cell = Cell::new(CellKind::Nand2, 2);
        let base = nominal_arc(&tech, &cell, slew, load).delay;
        prop_assert!(base > 0.0);
        prop_assert!(nominal_arc(&tech, &cell, slew + extra_slew, load).delay > base);
        prop_assert!(nominal_arc(&tech, &cell, slew, load + extra_load).delay > base);
    }

    #[test]
    fn higher_threshold_never_speeds_a_cell_up(
        dvth in -0.05f64..0.05,
        extra in 0.001f64..0.05,
    ) {
        let tech = Technology::synthetic_28nm();
        let cell = Cell::new(CellKind::Inv, 1);
        let slow = evaluate_arc(&tech, &cell, 10e-12, 1e-15, dvth + extra, 1.0).delay;
        let fast = evaluate_arc(&tech, &cell, 10e-12, 1e-15, dvth, 1.0).delay;
        prop_assert!(slow >= fast);
    }

    #[test]
    fn sigma_levels_partition_probability(n in -3i32..=3) {
        let lvl = SigmaLevel::from_n(n).unwrap();
        let p = lvl.probability();
        prop_assert!(p > 0.0 && p < 1.0);
        // Symmetry: P(nσ) + P(−nσ) = 1.
        let mirror = SigmaLevel::from_n(-n).unwrap();
        prop_assert!((p + mirror.probability() - 1.0).abs() < 1e-12);
    }
}

mod extended_properties {
    use nsigma::core::extended::{cornish_fisher_quantile, extended_quantiles, YieldCurve};
    use nsigma::core::stat_max::{clark_max, MergeRule};
    use nsigma::stats::moments::Moments;
    use nsigma::stats::quantile::{QuantileSet, SigmaLevel};
    use proptest::prelude::*;

    /// Strategy: a strictly increasing, positive quantile set.
    fn quantile_set_strategy() -> impl Strategy<Value = QuantileSet> {
        (10.0f64..1e3, proptest::collection::vec(0.1f64..50.0, 6)).prop_map(|(start, gaps)| {
            let mut v = [0.0; 7];
            v[0] = start;
            for i in 1..7 {
                v[i] = v[i - 1] + gaps[i - 1];
            }
            QuantileSet::from_values(v)
        })
    }

    proptest! {
        #[test]
        fn cornish_fisher_is_gaussian_consistent(
            mean in 1.0f64..1e3,
            std in 0.1f64..50.0,
            n in -6.0f64..6.0,
        ) {
            let m = Moments { mean, std, skewness: 0.0, kurtosis: 3.0, n: 0 };
            let q = cornish_fisher_quantile(&m, n);
            prop_assert!((q - (mean + std * n)).abs() < 1e-9 * (1.0 + q.abs()));
        }

        #[test]
        fn cornish_fisher_monotone_for_mild_moments(
            mean in 10.0f64..1e3,
            std in 0.5f64..20.0,
            skew in -0.4f64..0.4,
            kurt in 3.0f64..3.8,
        ) {
            // The third-order CF expansion is guaranteed monotone only in
            // a moderate (z, γ, κ) box — a documented limitation. Inside
            // the ±3σ body with delay-like moments it is monotone; the ±6σ
            // ladder is checked separately with its clamped construction.
            let m = Moments { mean, std, skewness: skew, kurtosis: kurt, n: 0 };
            let mut last = f64::NEG_INFINITY;
            for i in -6..=6 {
                let q = cornish_fisher_quantile(&m, i as f64 * 0.5);
                prop_assert!(q >= last, "non-monotone at n={}", i as f64 * 0.5);
                last = q;
            }
        }

        #[test]
        fn extended_ladder_is_always_monotone(
            mean in 10.0f64..1e3,
            std in 0.5f64..50.0,
            skew in -1.5f64..1.5,
            kurt in 2.0f64..9.0,
        ) {
            let m = Moments { mean, std, skewness: skew, kurtosis: kurt, n: 0 };
            let ladder = extended_quantiles(&m, None);
            prop_assert_eq!(ladder.len(), 13);
            for w in ladder.windows(2) {
                prop_assert!(w[1].1 >= w[0].1);
            }
        }

        #[test]
        fn yield_curve_round_trips(q in quantile_set_strategy(), p in 0.001f64..0.999) {
            let y = YieldCurve::new(&q);
            let t = y.delay_at_yield(p);
            prop_assert!((y.yield_at(t) - p).abs() < 1e-9);
        }

        #[test]
        fn yield_is_monotone(q in quantile_set_strategy(), t1 in 0.0f64..2e3, dt in 0.0f64..500.0) {
            let y = YieldCurve::new(&q);
            prop_assert!(y.yield_at(t1 + dt) >= y.yield_at(t1));
        }

        #[test]
        fn clark_max_dominates_inputs(
            a in quantile_set_strategy(),
            b in quantile_set_strategy(),
            rho in 0.0f64..1.0,
        ) {
            let m = clark_max(&a, &b, rho);
            prop_assert!(m.is_monotone());
            for lvl in SigmaLevel::ALL {
                prop_assert!(m[lvl] >= a[lvl].max(b[lvl]) - 1e-9);
            }
        }

        #[test]
        fn merge_rules_agree_on_dominated_inputs(
            a in quantile_set_strategy(),
            shift in 500.0f64..5e3,
        ) {
            // When one arrival dominates completely, every rule returns it.
            let b = a.map(|x| x + shift);
            for rule in [MergeRule::Pessimistic, MergeRule::Clark { rho: 0.3 }] {
                let m = rule.merge(&a, &b);
                for lvl in SigmaLevel::ALL {
                    prop_assert!((m[lvl] - b[lvl]).abs() < 0.02 * b[lvl]);
                }
            }
        }
    }
}

mod netlist_properties {
    use nsigma::cells::CellLibrary;
    use nsigma::netlist::generators::arith::ripple_adder;
    use nsigma::netlist::generators::arith_fast::cla_adder;
    use nsigma::netlist::mapping::map_to_cells;
    use nsigma::netlist::sim::evaluate_packed;
    use nsigma::netlist::verilog::{parse_verilog, structurally_equal, write_verilog};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn adders_agree_for_any_operands(a in 0u64..256, b in 0u64..256, cin in 0u64..2) {
            let lib = CellLibrary::standard();
            let ripple = map_to_cells(&ripple_adder(8), &lib).unwrap();
            let cla = map_to_cells(&cla_adder(8), &lib).unwrap();
            let pack = |nl: &nsigma::netlist::ir::Netlist| {
                let out = evaluate_packed(nl, &lib, &[("cin", cin), ("a", a), ("b", b)]);
                let mut s = 0u64;
                for (bit, &v) in out.iter().take(9).enumerate() {
                    if v { s |= 1 << bit; }
                }
                s
            };
            prop_assert_eq!(pack(&ripple), a + b + cin);
            prop_assert_eq!(pack(&cla), a + b + cin);
        }

        #[test]
        fn verilog_round_trip_random_widths(w in 2usize..10) {
            let lib = CellLibrary::standard();
            let original = map_to_cells(&ripple_adder(w), &lib).unwrap();
            let text = write_verilog(&original, &lib);
            let parsed = parse_verilog(&text, &lib).unwrap();
            prop_assert!(structurally_equal(&original, &parsed, &lib));
        }
    }
}
