#!/usr/bin/env bash
# Tier-1 gate: format, build, test, lint. Offline-safe — all dependencies
# resolve to in-repo path crates (compat/*), so no network is ever needed.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

cargo fmt --check
cargo build --release --offline --workspace
cargo test -q --offline --workspace
# The session-vs-reference differential suite must pass in release too: the
# bit-identity claims are about the optimized code the server actually runs.
cargo test -q --offline --release -p nsigma --test compiled
cargo clippy --offline --workspace --all-targets -- -D warnings

# Request paths must stay panic-free: no `.unwrap(` outside #[cfg(test)]
# in the server, CLI and yield-engine sources (typed QueryError +
# poison-tolerant locks replaced them; see DESIGN.md §8–9).
unwrap_hits=$(for f in crates/server/src/*.rs crates/cli/src/*.rs crates/yield/src/*.rs; do
  awk '/#\[cfg\(test\)\]/{exit} /\.unwrap\(/{print FILENAME ":" FNR ": " $0}' "$f"
done)
if [ -n "$unwrap_hits" ]; then
  echo "ci: .unwrap() reintroduced on a request path:" >&2
  echo "$unwrap_hits" >&2
  exit 1
fi
# Criterion benches must at least compile; running them is opt-in.
cargo bench --offline --workspace --no-run

# The static-analysis pass must stay clean on every generated benchmark
# circuit (exit code is nonzero on any error-severity diagnostic).
./target/release/nsigma-sta lint --suite generated > /dev/null
./target/release/nsigma-sta lint --iscas c432 --ndjson > /dev/null

# Yield-engine smoke: the CLI `yield` subcommand on a generated circuit
# must emit the full JSON schema and be byte-stable for a fixed seed.
yield_tmp=$(mktemp -d)
trap 'rm -rf "$yield_tmp"' EXIT
./target/release/nsigma-sta characterize \
  --coeff "$yield_tmp/coeff.txt" --samples 400 --seed 3 > /dev/null
yield_cmd=(./target/release/nsigma-sta yield --iscas c432
  --coeff "$yield_tmp/coeff.txt" --seed 5 --samples 1024 --chunk 256
  --ci 0.02 --importance --json)
"${yield_cmd[@]}" > "$yield_tmp/yield1.json"
for key in '"yield":' '"ci_lo":' '"ci_hi":' '"ci_half_width":' \
           '"samples":' '"ess":' '"curve":'; do
  grep -q "$key" "$yield_tmp/yield1.json" || {
    echo "ci: yield JSON is missing $key" >&2
    exit 1
  }
done
"${yield_cmd[@]}" > "$yield_tmp/yield2.json"
cmp -s "$yield_tmp/yield1.json" "$yield_tmp/yield2.json" || {
  echo "ci: yield output is not deterministic for a fixed seed" >&2
  exit 1
}

echo "ci: all green"
