#!/usr/bin/env bash
# Tier-1 gate: format, build, test, lint. Offline-safe — all dependencies
# resolve to in-repo path crates (compat/*), so no network is ever needed.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

cargo fmt --check
cargo build --release --offline --workspace
cargo test -q --offline --workspace
cargo clippy --offline --workspace --all-targets -- -D warnings

# The static-analysis pass must stay clean on every generated benchmark
# circuit (exit code is nonzero on any error-severity diagnostic).
./target/release/nsigma-sta lint --suite generated > /dev/null
./target/release/nsigma-sta lint --iscas c432 --ndjson > /dev/null

echo "ci: all green"
