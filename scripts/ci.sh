#!/usr/bin/env bash
# Tier-1 gate: build, test, lint. Offline-safe — all dependencies resolve
# to in-repo path crates (compat/*), so no network is ever needed.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

cargo build --release --offline --workspace
cargo test -q --offline --workspace
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "ci: all green"
