//! Timing-as-a-service walkthrough: start the daemon in-process, register
//! an ISCAS-style benchmark over TCP, query its worst paths and an
//! extrapolated quantile, resize a gate through the incremental timer, and
//! shut the server down — all through the newline-delimited JSON protocol.
//!
//! Run with: `cargo run --release -p nsigma --example timing_server`

use nsigma::core::sta::TimerConfig;
use nsigma_server::{Client, Server, ServerConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A trimmed characterization keeps the example quick; production
    // servers keep the 10 k-sample default and persist the coefficients
    // with `coeff_path` so restarts skip this step entirely.
    let mut timer = TimerConfig::standard(42);
    timer.char_samples = 500;
    timer.wire.nets = 1;
    timer.wire.samples = 300;

    println!("building the N-sigma timer (once, shared by all queries)...");
    let handle = Server::start(ServerConfig {
        threads: 2,
        timer,
        ..ServerConfig::default()
    })?;
    println!("listening on {}", handle.addr());

    let mut client = Client::connect(handle.addr())?;
    for line in [
        r#"{"cmd":"register_design","name":"c432","iscas":"c432","seed":7}"#,
        r#"{"cmd":"worst_paths","design":"c432","k":2}"#,
        r#"{"cmd":"quantile","design":"c432","path":0,"sigma":4.5}"#,
        r#"{"cmd":"stats"}"#,
    ] {
        println!("> {line}");
        println!("< {}", client.request_line(line)?);
    }

    // An ECO resize goes through the incremental timer: only the affected
    // cone is re-analyzed, and the response reports how much.
    let wp = client.request_ok(r#"{"cmd":"worst_paths","design":"c432","k":1}"#)?;
    let gate = wp.get("paths").unwrap().as_arr().unwrap()[0]
        .get("gates")
        .unwrap()
        .as_arr()
        .unwrap()[0]
        .as_str()
        .unwrap()
        .to_string();
    let line = format!(r#"{{"cmd":"eco_resize","design":"c432","gate":"{gate}","strength":8}}"#);
    println!("> {line}");
    println!("< {}", client.request_line(&line)?);

    let line = r#"{"cmd":"shutdown"}"#;
    println!("> {line}");
    println!("< {}", client.request_line(line)?);
    handle.wait();
    println!("server drained and stopped");
    Ok(())
}
