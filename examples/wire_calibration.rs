//! Wire-model walkthrough: calibrate the eq. (5)–(9) wire variability model,
//! inspect the fitted coefficients and check one net against golden
//! transient Monte Carlo.
//!
//! Run with: `cargo run --release -p nsigma --example wire_calibration`

use nsigma_cells::cell::{Cell, CellKind};
use nsigma_core::wire_model::{cell_coefficient, WireCalibConfig, WireVariabilityModel};
use nsigma_interconnect::generator::random_net;
use nsigma_mc::wire_sim::{WireGoldenMode, WireMcConfig};
use nsigma_process::Technology;
use nsigma_stats::quantile::SigmaLevel;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = Technology::synthetic_28nm();

    // The eq. (5) cell-specific coefficients, normalized to INVx4.
    println!("cell-specific coefficients (eq. 5, theory):");
    for (kind, s) in [
        (CellKind::Inv, 1),
        (CellKind::Inv, 4),
        (CellKind::Inv, 8),
        (CellKind::Nand2, 2),
        (CellKind::Aoi21, 4),
    ] {
        let cell = Cell::new(kind, s);
        println!("  X({}) = {:.3}", cell.name(), cell_coefficient(&cell));
    }

    // Calibrate over the five RC example circuits.
    println!("\ncalibrating the wire variability model (5 nets x 4x4 strengths)...");
    let model = WireVariabilityModel::calibrate(&tech, &WireCalibConfig::standard(17))?;
    println!("  sigma/mu of the FO4 baseline: {:.4}", model.r_fo4());
    let weak = model.predict_xw(&Cell::new(CellKind::Inv, 1), &Cell::new(CellKind::Inv, 4));
    let strong = model.predict_xw(&Cell::new(CellKind::Inv, 8), &Cell::new(CellKind::Inv, 4));
    println!("  X_w with weak INVx1 driver: {weak:.4}; with strong INVx8 driver: {strong:.4}");

    // Check a net against the transient golden.
    let mut rng = SmallRng::seed_from_u64(99);
    let tree = random_net(&mut rng, 1);
    let driver = Cell::new(CellKind::Inv, 2);
    let load = Cell::new(CellKind::Inv, 4);
    println!(
        "\nchecking a random net ({} nodes, R = {:.0} ohm, C = {:.2} fF) against 4000 transient samples...",
        tree.len(),
        tree.total_res(),
        tree.total_cap() * 1e15
    );
    let check = model.check_against_golden(
        &tech,
        &tree,
        &driver,
        &load,
        &WireMcConfig {
            samples: 4000,
            seed: 5,
            input_slew: 10e-12,
            mode: WireGoldenMode::Transient,
        },
    );
    println!(
        "  golden:    -3σ {:6.2} ps, median {:6.2} ps, +3σ {:6.2} ps",
        check.golden[SigmaLevel::MinusThree] * 1e12,
        check.golden[SigmaLevel::Zero] * 1e12,
        check.golden[SigmaLevel::PlusThree] * 1e12
    );
    println!(
        "  model:     -3σ {:6.2} ps, median {:6.2} ps, +3σ {:6.2} ps",
        check.predicted[SigmaLevel::MinusThree] * 1e12,
        check.predicted[SigmaLevel::Zero] * 1e12,
        check.predicted[SigmaLevel::PlusThree] * 1e12
    );
    println!(
        "  errors:    -3σ {:.2}%, +3σ {:.2}% (plain Elmore would sit at {:.2} ps flat)",
        check.minus3_err_pct,
        check.plus3_err_pct,
        check.elmore * 1e12
    );
    Ok(())
}
