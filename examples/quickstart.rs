//! Quickstart: build a design, build the N-sigma timer, and read the
//! sign-off quantiles of its critical path — then check them against golden
//! Monte Carlo.
//!
//! Run with: `cargo run --release -p nsigma --example quickstart`

use nsigma_cells::cell::{Cell, CellKind};
use nsigma_cells::CellLibrary;
use nsigma_core::sta::{NsigmaTimer, TimerConfig};
use nsigma_core::{MergeRule, TimingSession};
use nsigma_mc::design::Design;
use nsigma_mc::path_sim::{simulate_path_mc, PathMcConfig};
use nsigma_netlist::generators::arith::ripple_adder;
use nsigma_netlist::mapping::map_to_cells;
use nsigma_process::Technology;
use nsigma_stats::quantile::SigmaLevel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A synthetic 28 nm-class technology at the paper's 0.6 V point.
    let tech = Technology::synthetic_28nm();

    // 2. A library restricted to what the adder uses (fast characterization).
    let mut lib = CellLibrary::new();
    for kind in [
        CellKind::Inv,
        CellKind::Buf,
        CellKind::Nand2,
        CellKind::Xor2,
    ] {
        for s in [1, 2, 4, 8] {
            lib.add(Cell::new(kind, s));
        }
    }

    // 3. A 16-bit ripple-carry adder mapped onto the library, with generated
    //    parasitics (the place-and-route substitute).
    let netlist = map_to_cells(&ripple_adder(16), &lib)?;
    let design = Design::with_generated_parasitics(tech.clone(), lib.clone(), netlist, 42);
    println!(
        "design: {} gates, {} nets",
        design.netlist.num_gates(),
        design.netlist.num_nets()
    );

    // 4. Build the N-sigma timer: characterizes every cell, fits the Table I
    //    coefficients, calibrates the wire model. One-time cost.
    println!("building N-sigma timer (characterization + calibration)...");
    let timer = NsigmaTimer::build(&tech, &lib, &TimerConfig::standard(7))?;

    // 5. Open a timing session and analyze the critical path —
    //    instantaneous, no Monte Carlo.
    let session = TimingSession::new(&timer, design.clone(), MergeRule::Pessimistic)?;
    let (path, timing) = session.critical_path().expect("non-empty design");
    println!("\ncritical path: {} stages", path.len());
    for lvl in SigmaLevel::ALL {
        println!("  T_path({lvl}) = {:8.1} ps", timing.quantiles[lvl] * 1e12);
    }

    // 6. Check against the golden Monte Carlo (the SPICE substitute).
    println!("\nrunning 3000-sample golden MC for comparison...");
    let golden = simulate_path_mc(
        &design,
        &path,
        &PathMcConfig {
            samples: 3000,
            seed: 1,
            input_slew: 10e-12,
        },
    );
    for lvl in [
        SigmaLevel::MinusThree,
        SigmaLevel::Zero,
        SigmaLevel::PlusThree,
    ] {
        let err = (timing.quantiles[lvl] - golden.quantiles[lvl]) / golden.quantiles[lvl] * 100.0;
        println!(
            "  {lvl}: model {:8.1} ps vs golden {:8.1} ps ({err:+.1}%)",
            timing.quantiles[lvl] * 1e12,
            golden.quantiles[lvl] * 1e12
        );
    }
    println!(
        "\ngolden MC took {:.2?}; the model answered from its coefficient tables.",
        golden.elapsed
    );
    Ok(())
}
