//! ECO gate-sizing walkthrough with an N-sigma timing session: fix a
//! +3σ timing violation by upsizing cells on the critical path, re-analyzing
//! only the affected cone after each edit — the gate-sizing context the
//! paper's correction-factor citation [8] lives in.
//!
//! Run with: `cargo run --release -p nsigma --example eco_sizing`

use nsigma::cells::cell::{Cell, CellKind};
use nsigma::cells::CellLibrary;
use nsigma::core::session::TimingSession;
use nsigma::core::sta::{NsigmaTimer, TimerConfig};
use nsigma::core::stat_max::MergeRule;
use nsigma::mc::design::Design;
use nsigma::mc::path_sim::find_critical_path;
use nsigma::netlist::generators::arith::ripple_adder;
use nsigma::netlist::mapping::map_to_cells;
use nsigma::process::Technology;
use nsigma::stats::quantile::SigmaLevel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = Technology::synthetic_28nm();
    let mut lib = CellLibrary::new();
    for kind in [
        CellKind::Inv,
        CellKind::Buf,
        CellKind::Nand2,
        CellKind::Xor2,
    ] {
        for s in [1, 2, 4, 8] {
            lib.add(Cell::new(kind, s));
        }
    }
    let netlist = map_to_cells(&ripple_adder(12), &lib)?;
    let design = Design::with_generated_parasitics(tech.clone(), lib.clone(), netlist, 0xEC0);
    let total_gates = design.netlist.num_gates();

    println!("building N-sigma timer...");
    let mut cfg = TimerConfig::standard(0xEC0);
    cfg.char_samples = 2000;
    let timer = NsigmaTimer::build(&tech, &lib, &cfg)?;

    // Critical path before any edit.
    let path = find_critical_path(&design).expect("path");
    let mut inc = TimingSession::new(&timer, design, MergeRule::Pessimistic)?;
    let before = inc.worst_output();
    println!(
        "\ninitial worst +3σ arrival: {:.1} ps ({} gates, {}-stage critical path)",
        before[SigmaLevel::PlusThree] * 1e12,
        total_gates,
        path.len()
    );

    // Sign-off target: 10% under the current +3σ.
    let target = before[SigmaLevel::PlusThree] * 0.90;
    println!("ECO target: {:.1} ps (+3σ)", target * 1e12);

    // Greedy sizing: walk the critical path from the endpoint backwards,
    // upsizing x1/x2 cells to x4, until the target holds.
    let mut edits = 0;
    let mut touched = 0;
    for &g in path.gates.iter().rev() {
        let current = inc.worst_output()[SigmaLevel::PlusThree];
        if current <= target {
            break;
        }
        let strength = {
            let d = inc.design();
            d.lib.cell(d.netlist.gate(g).cell).strength()
        };
        if strength >= 8 {
            continue;
        }
        let new_strength = (strength * 2).min(8);
        let after = inc.resize_gate(g, new_strength)?;
        edits += 1;
        touched += inc.last_recompute_count();
        println!(
            "  upsized {} x{} -> x{}: +3σ now {:.1} ps (recomputed {} of {} gates)",
            inc.design().netlist.gate(g).name,
            strength,
            new_strength,
            after[SigmaLevel::PlusThree] * 1e12,
            inc.last_recompute_count(),
            total_gates
        );
    }

    let after = inc.worst_output();
    println!(
        "\n{} edits, {} cone re-evaluations total (vs {} full re-analyses = {} gate visits)",
        edits,
        touched,
        edits,
        edits * total_gates
    );
    println!(
        "final +3σ: {:.1} ps ({}target {:.1} ps)",
        after[SigmaLevel::PlusThree] * 1e12,
        if after[SigmaLevel::PlusThree] <= target {
            "meets "
        } else {
            "missed "
        },
        target * 1e12
    );
    Ok(())
}
