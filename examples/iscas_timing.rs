//! ISCAS85-style benchmark timing: generate the c432-class circuit, compare
//! the N-sigma timer against golden Monte Carlo and a corner analysis —
//! a miniature of the paper's Table III row.
//!
//! Run with: `cargo run --release -p nsigma --example iscas_timing`

use nsigma_baselines::corner::CornerSta;
use nsigma_cells::CellLibrary;
use nsigma_core::sta::{NsigmaTimer, TimerConfig};
use nsigma_core::{MergeRule, TimingSession};
use nsigma_mc::design::Design;
use nsigma_mc::path_sim::{find_critical_path, simulate_path_mc, PathMcConfig};
use nsigma_netlist::generators::random_dag::Iscas85;
use nsigma_netlist::mapping::map_to_cells;
use nsigma_netlist::topo;
use nsigma_process::Technology;
use nsigma_stats::quantile::SigmaLevel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = Technology::synthetic_28nm();
    let lib = CellLibrary::standard();

    // The c432-sized synthetic benchmark (matched to the paper's cell count).
    let logic = Iscas85::C432.generate();
    let netlist = map_to_cells(&logic, &lib)?;
    println!(
        "c432: {} mapped gates, {} nets, depth {}",
        netlist.num_gates(),
        netlist.num_nets(),
        topo::depth(&netlist)
    );
    let design = Design::with_generated_parasitics(tech.clone(), lib.clone(), netlist, 0xC432);

    println!("building N-sigma timer over the full standard library...");
    let timer = NsigmaTimer::build(&tech, &lib, &TimerConfig::standard(5))?;

    let path = find_critical_path(&design).expect("critical path");
    println!("critical path: {} stages", path.len());

    let session = TimingSession::new(&timer, design.clone(), MergeRule::Pessimistic)?;
    let model = session.analyze_path(&path)?;
    let golden = simulate_path_mc(&design, &path, &PathMcConfig::paper(0xC0FFEE));
    let corner = CornerSta::signoff().analyze_path(&design, &path);

    println!("\n                 -3σ (ps)   +3σ (ps)");
    println!(
        "golden MC       {:9.1}  {:9.1}",
        golden.quantiles[SigmaLevel::MinusThree] * 1e12,
        golden.quantiles[SigmaLevel::PlusThree] * 1e12
    );
    println!(
        "N-sigma (ours)  {:9.1}  {:9.1}",
        model.quantiles[SigmaLevel::MinusThree] * 1e12,
        model.quantiles[SigmaLevel::PlusThree] * 1e12
    );
    println!(
        "corner (PT)     {:9.1}  {:9.1}   <- stacked-3σ pessimism",
        corner.early * 1e12,
        corner.late * 1e12
    );

    let err = |a: f64, b: f64| (a - b) / b * 100.0;
    println!(
        "\nours vs golden: -3σ {:+.1}%, +3σ {:+.1}%;  corner late vs golden +3σ: {:+.1}%",
        err(
            model.quantiles[SigmaLevel::MinusThree],
            golden.quantiles[SigmaLevel::MinusThree]
        ),
        err(
            model.quantiles[SigmaLevel::PlusThree],
            golden.quantiles[SigmaLevel::PlusThree]
        ),
        err(corner.late, golden.quantiles[SigmaLevel::PlusThree])
    );
    Ok(())
}
