//! Library characterization walkthrough: run the paper's Fig. 5 flow for a
//! single cell, inspect the moment surfaces, fit the operating-condition
//! calibration (eqs. 1–3) and persist/reload the full coefficient file.
//!
//! Run with: `cargo run --release -p nsigma --example characterize_library`

use nsigma_cells::cell::{Cell, CellKind};
use nsigma_cells::characterize::{characterize_cell, CharacterizeConfig};
use nsigma_cells::CellLibrary;
use nsigma_core::calibration::{MomentCalibration, C_REF, S_REF};
use nsigma_core::sta::{NsigmaTimer, TimerConfig};
use nsigma_core::{read_coefficients, write_coefficients};
use nsigma_process::Technology;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = Technology::synthetic_28nm();
    let cell = Cell::new(CellKind::Nand2, 2);

    // Characterize NAND2x2 over the standard slew × load grid.
    println!(
        "characterizing {} (5k MC samples per grid point)...",
        cell.name()
    );
    let grid = characterize_cell(&tech, &cell, &CharacterizeConfig::standard(5000, 11));

    println!("\nmoments across the grid (rows: slew, cols: load):");
    for p in grid.iter().take(6) {
        println!(
            "  S={:5.0} ps C={:4.1} fF -> mu={:6.1} ps sigma={:5.1} ps gamma={:+.2} kappa={:.2}",
            p.slew * 1e12,
            p.load * 1e15,
            p.moments.mean * 1e12,
            p.moments.std * 1e12,
            p.moments.skewness,
            p.moments.kurtosis
        );
    }

    // Fit the eq. (1)–(3) calibration and query an off-grid point.
    let cal = MomentCalibration::fit(&grid, S_REF, C_REF)?;
    let m = cal.moments_at(75e-12, 1.4e-15);
    println!(
        "\ncalibrated moments at (75 ps, 1.4 fF): mu={:.1} ps sigma={:.1} ps gamma={:+.2} kappa={:.2}",
        m.mean * 1e12,
        m.std * 1e12,
        m.skewness,
        m.kurtosis
    );

    // Build a small timer and round-trip its coefficient file — the LUT of
    // the paper's Fig. 5.
    let mut lib = CellLibrary::new();
    for s in [1, 2, 4] {
        lib.add(Cell::new(CellKind::Inv, s));
        lib.add(Cell::new(CellKind::Nand2, s));
    }
    let mut cfg = TimerConfig::standard(3);
    cfg.char_samples = 2000;
    cfg.wire.samples = 1000;
    println!(
        "\nbuilding a timer for {} cells and writing coefficients...",
        lib.len()
    );
    let timer = NsigmaTimer::build(&tech, &lib, &cfg)?;
    let text = write_coefficients(&timer);
    println!(
        "coefficient file: {} lines, {} bytes",
        text.lines().count(),
        text.len()
    );

    let restored = read_coefficients(&tech, &text)?;
    println!(
        "reloaded timer knows {} cells; INVx1 reference mu = {:.1} ps",
        restored.calibrations().len(),
        restored.calibrations()["INVx1"].reference.mean * 1e12
    );
    Ok(())
}
